package membership

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Coordinator is the shared substrate of the agreement protocol: the live
// set, round bookkeeping, votes, and the global barriers. In the real
// system this state is replicated by the group-membership messages; the
// simulation centralizes it (as the paper's oracle did) while the probe
// traffic and recovery work remain real per-cell activity.
type Coordinator struct {
	Mode AgreementMode
	// OracleFailed reports ground truth: has this cell failed or been
	// corrupted? Wired by the fault injector in Oracle mode.
	OracleFailed func(cell int) bool
	// OnDeclaredDead is invoked once when agreement declares a cell
	// dead; the cell layer uses it to force the (possibly still
	// running, corrupt) cell to stop — the consensus-gated reboot.
	OnDeclaredDead func(cell int)
	// AutoReintegrate lets the recovery master reboot repaired cells.
	AutoReintegrate bool
	// BrokenHardware marks nodes that fail the master's diagnostics.
	BrokenHardware map[int]bool
	// OnBarrier1Open, when set (fault injectors), fires once per round at
	// the moment the first member crosses barrier 1 — the window between
	// the two recovery barriers the v2 campaign injects faults into.
	OnBarrier1Open func(suspect, coordinator int)

	cells      int
	nodesByCel [][]int
	live       map[int]bool
	monitors   map[int]*Monitor

	cur       *round
	completed map[string]bool
	waiters   []*sim.Task

	votedDown  map[int]map[int]int // accuser -> suspect -> times voted down
	forcedDead map[int]bool

	// Measurements for the Table 7.4 harness.
	LastDetectAt   sim.Time // latest "entered recovery" time of any cell
	FirstDetectAt  sim.Time
	RecoveryEndAt  sim.Time
	RoundsRun      int
	FalseAlarms    int
	DeadDeclared   []int
	recoveryActive int
	// RoundRestarts counts rounds whose coordinator died mid-round and
	// were deterministically restarted under the next live member.
	RoundRestarts int
}

// round is one agreement/recovery round.
type round struct {
	key     string
	suspect int
	accuser int
	members map[int]bool // live cells minus suspect
	joined  map[int]bool // members that have taken up the round
	votes   map[int]bool // cell -> votesDead
	// deadVotes counts the true entries in votes, maintained incrementally
	// on insert and withdrawal so the tally never rescans the vote map —
	// the rescans were O(members²) per round at large cell counts.
	deadVotes int
	verdict   *sim.Future // resolves to map[int]bool of confirmed-dead cells
	applied   bool
	barrier1  *sim.Barrier
	barrier2  *sim.Barrier
	b1Seen    map[int]bool
	b2Seen    map[int]bool
	done      map[int]bool
	entered   map[int]sim.Time

	// coordinator is the member that drives the round's post-barrier
	// work (diagnostics, reintegration): the lowest live member at round
	// creation. If it dies mid-round the round restarts deterministically
	// under the next live member (CellDiedMidRound).
	coordinator int
	b1Fired     bool // OnBarrier1Open fired

	corruptAccuser int // -1, or a cell the round branded corrupt
}

// NewCoordinator builds the coordinator for `cells` cells, each owning the
// listed nodes.
func NewCoordinator(cells int, nodesByCell [][]int, mode AgreementMode) *Coordinator {
	c := &Coordinator{
		Mode:       mode,
		cells:      cells,
		nodesByCel: nodesByCell,
		live:       make(map[int]bool),
		monitors:   make(map[int]*Monitor),
		completed:  make(map[string]bool),
		votedDown:  make(map[int]map[int]int),
		forcedDead: make(map[int]bool),
	}
	for i := 0; i < cells; i++ {
		c.live[i] = true
	}
	return c
}

func (c *Coordinator) register(m *Monitor) { c.monitors[m.CellID] = m }

// isLive reports whether a cell is in the current live set.
func (c *Coordinator) isLive(cell int) bool { return c.live[cell] }

// liveSet returns the live cells, ascending.
func (c *Coordinator) liveSet() []int { return sortedCells(c.live) }

// LiveCount returns the size of the live set.
func (c *Coordinator) LiveCount() int { return len(c.live) }

// neighborOf returns the next live cell after `cell` in the monitoring
// ring, or -1 when alone.
func (c *Coordinator) neighborOf(cell int) int {
	for i := 1; i < c.cells; i++ {
		n := (cell + i) % c.cells
		if c.live[n] {
			return n
		}
	}
	return -1
}

// masterOf returns the recovery master: the lowest live cell.
func (c *Coordinator) masterOf() int {
	ls := c.liveSet()
	if len(ls) == 0 {
		return -1
	}
	return ls[0]
}

// firstNodeOf returns a cell's first node (its clock word's home).
func (c *Coordinator) firstNodeOf(cell int) int { return c.nodesByCel[cell][0] }

// nodesOf returns a cell's nodes.
func (c *Coordinator) nodesOf(cell int) []int { return c.nodesByCel[cell] }

// ensureRound joins (or creates) the round for this alert on behalf of
// cellID. A nil round with retry=false means the alert is stale: its round
// already completed, the suspect is already dead, or this cell already
// served the active round. retry=true means the coordinator is busy with a
// different suspect and the caller should re-present the alert once the
// active round drains.
func (c *Coordinator) ensureRound(alert *alertMsg, cellID int) (*round, bool) {
	key := fmt.Sprintf("%d:%d", alert.Accuser, alert.Sequence)
	if c.cur != nil {
		// An active round for this suspect folds late members in even
		// if the verdict has already landed — the barriers need every
		// member, and the live set may already exclude the suspect.
		if c.cur.suspect == alert.Suspect && c.cur.members[cellID] &&
			!c.cur.done[cellID] && !c.cur.joined[cellID] {
			c.cur.joined[cellID] = true
			return c.cur, false
		}
		if c.cur.suspect == alert.Suspect {
			c.completed[key] = true // duplicate accusation, already serving
			return nil, false
		}
		// Busy with a different suspect: this alert still needs a round.
		return nil, c.live[alert.Suspect]
	}
	if c.completed[key] {
		return nil, false
	}
	if !c.live[alert.Suspect] {
		c.completed[key] = true
		return nil, false
	}
	r := &round{
		key:     key,
		suspect: alert.Suspect,
		accuser: alert.Accuser,
		members: make(map[int]bool),
		joined:  map[int]bool{cellID: true},
		votes:   make(map[int]bool),
		verdict: &sim.Future{},
		b1Seen:  make(map[int]bool),
		b2Seen:  make(map[int]bool),
		done:    make(map[int]bool),
		entered: make(map[int]sim.Time),

		corruptAccuser: -1,
	}
	for cell := range c.live {
		if cell == alert.Suspect {
			continue
		}
		// A cell whose monitor already died (simultaneous failure, not yet
		// declared by its own round) can never join or arrive at the
		// barriers — enrolling it would hang every survivor.
		if mon := c.monitors[cell]; mon != nil && mon.dead {
			continue
		}
		r.members[cell] = true
	}
	if ms := sortedCells(r.members); len(ms) > 0 {
		r.coordinator = ms[0]
	}
	r.barrier1 = sim.NewBarrier(len(r.members))
	r.barrier2 = sim.NewBarrier(len(r.members))
	c.cur = r
	c.RoundsRun++
	return r, false
}

// agree resolves the round's verdict for one member cell and returns the
// set of confirmed-dead cells (empty = false alarm). Round state is only
// touched in global sections; the liveness probe is real RPC traffic from
// the member's cell and runs on its own shard between them.
func (c *Coordinator) agree(t *sim.Task, mon *Monitor, r *round) map[int]bool {
	needVote := false
	mon.global(t, func() {
		if r.verdict.Ready() {
			return
		}
		switch {
		case c.forcedDead[r.suspect]:
			// Corrupt-accuser rule already branded the suspect.
			c.applyVerdict(r, map[int]bool{r.suspect: true})
		case c.Mode == Oracle:
			dead := map[int]bool{}
			if c.OracleFailed != nil && c.OracleFailed(r.suspect) {
				dead[r.suspect] = true
			}
			c.applyVerdict(r, dead)
		default:
			// Voting: this member probes and records its vote; the
			// last vote tallies.
			_, voted := r.votes[mon.CellID]
			needVote = !voted
		}
	})
	if needVote {
		alive := mon.probe(t, r.suspect)
		mon.global(t, func() {
			if _, voted := r.votes[mon.CellID]; voted {
				return
			}
			r.votes[mon.CellID] = !alive
			dead := int64(0)
			if r.votes[mon.CellID] {
				dead = 1
				r.deadVotes++
			}
			mon.Tracer.Emit(t.Now(), trace.Vote, int64(r.suspect), dead, "")
			c.tallyVotes(r)
		})
	}
	var v any
	mon.global(t, func() { v, _ = r.verdict.Wait(t) })
	return v.(map[int]bool)
}

// tallyVotes resolves the verdict once every (still-live) member has
// voted. It is re-run when a member dies mid-agreement, so a dead voter
// can never hang the round.
func (c *Coordinator) tallyVotes(r *round) {
	if r.verdict.Ready() || len(r.members) == 0 || len(r.votes) < len(r.members) {
		return
	}
	dead := map[int]bool{}
	if r.deadVotes*2 > len(r.members) {
		dead[r.suspect] = true
	}
	c.applyVerdict(r, dead)
}

// noteBarrier1Open fires the fault-injection hook the first time any member
// crosses barrier 1 — the inter-barrier window of the round.
func (c *Coordinator) noteBarrier1Open(r *round) {
	if r.b1Fired {
		return
	}
	r.b1Fired = true
	if c.OnBarrier1Open != nil {
		c.OnBarrier1Open(r.suspect, r.coordinator)
	}
}

// applyVerdict commits a round's outcome: live-set updates, the corrupt-
// accuser rule, and the forced stop of cells declared dead.
func (c *Coordinator) applyVerdict(r *round, dead map[int]bool) {
	if r.applied {
		return
	}
	r.applied = true
	if len(dead) == 0 {
		c.FalseAlarms++
		// Corrupt-accuser rule (§4.3): two voted-down alerts for the
		// same suspect brand the accuser corrupt.
		if c.votedDown[r.accuser] == nil {
			c.votedDown[r.accuser] = make(map[int]int)
		}
		c.votedDown[r.accuser][r.suspect]++
		if c.votedDown[r.accuser][r.suspect] >= 2 {
			r.corruptAccuser = r.accuser
			c.forcedDead[r.accuser] = true
		}
	} else {
		for _, cell := range sortedCells(dead) {
			delete(c.live, cell)
			c.DeadDeclared = append(c.DeadDeclared, cell)
			if mon := c.monitors[cell]; mon != nil {
				mon.Stop()
			}
			if c.OnDeclaredDead != nil {
				c.OnDeclaredDead(cell)
			}
		}
	}
	r.verdict.Set(dead, nil)
}

// noteRecoveryEntered records detection latency (Table 7.4's measurement:
// latency until the last cell enters recovery).
func (c *Coordinator) noteRecoveryEntered(r *round, cell int, at sim.Time) {
	r.entered[cell] = at
	if c.recoveryActive == 0 {
		c.FirstDetectAt = at
	}
	c.recoveryActive++
	if at > c.LastDetectAt {
		c.LastDetectAt = at
	}
}

// noteRecoveryDone records recovery completion times.
func (c *Coordinator) noteRecoveryDone(r *round, cell int, at sim.Time) {
	if at > c.RecoveryEndAt {
		c.RecoveryEndAt = at
	}
}

// finishRound marks a member's round participation complete; the last
// member closes the round.
func (c *Coordinator) finishRound(r *round, cell int) {
	r.done[cell] = true
	c.checkRoundDone(r)
}

func (c *Coordinator) checkRoundDone(r *round) {
	if r == nil {
		return
	}
	for m := range r.members {
		if !r.done[m] && c.live[m] {
			return
		}
	}
	c.completed[r.key] = true
	if c.cur == r {
		c.cur = nil
		c.recoveryActive = 0
	}
}

// CellDiedMidRound handles a member cell dying while a round is in flight
// (multi-failure tolerance): barrier membership shrinks so the survivors
// cannot hang, the dead member's vote is withdrawn and the agreement
// re-tallied, and — when the dead member was the round coordinator — the
// round deterministically restarts under the next live member.
func (c *Coordinator) CellDiedMidRound(cell int) {
	r := c.cur
	if r == nil || !r.members[cell] {
		return
	}
	delete(r.members, cell)
	if !r.b1Seen[cell] {
		r.barrier1.SetParties(len(r.members))
	}
	if !r.b2Seen[cell] {
		r.barrier2.SetParties(len(r.members))
	}
	// Withdraw the dead member's vote (it may never have voted; a round
	// must not wait on a dead voter) and re-tally the survivors.
	if r.votes[cell] {
		r.deadVotes--
	}
	delete(r.votes, cell)
	c.tallyVotes(r)
	if cell == r.coordinator {
		if ms := sortedCells(r.members); len(ms) > 0 {
			r.coordinator = ms[0]
			c.RoundRestarts++
			if mon := c.monitors[r.coordinator]; mon != nil {
				mon.Tracer.Emit(mon.M.Eng.Now(), trace.RoundRestart,
					int64(cell), int64(r.coordinator), "")
			}
		}
	}
	c.checkRoundDone(r)
}

// RecoveryIdle reports that no agreement/recovery round is active. Harness
// code uses it to wait until multi-fault recovery has fully drained — the
// live set shrinks at verdict time, before the recovery phases run.
func (c *Coordinator) RecoveryIdle() bool { return c.cur == nil }

// reintegrate returns a repaired cell to the live set.
func (c *Coordinator) reintegrate(cell int) {
	c.live[cell] = true
	delete(c.forcedDead, cell)
}

// Reintegrate is the exported form used by the cell reboot path.
func (c *Coordinator) Reintegrate(cell int) { c.reintegrate(cell) }

// Monitors exposes the registered monitors by cell (read-only use).
func (c *Coordinator) Monitors() map[int]*Monitor { return c.monitors }

// MarkDead removes a cell from the live set without agreement — used when
// a cell panics itself (it cannot vote about its own death) and by test
// setup.
func (c *Coordinator) MarkDead(cell int) {
	delete(c.live, cell)
	if mon := c.monitors[cell]; mon != nil {
		mon.Stop()
	}
	c.CellDiedMidRound(cell)
	c.checkRoundDone(c.cur)
}
