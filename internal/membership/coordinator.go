package membership

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
	"repro/internal/trace"
)

// Coordinator is the shared substrate of the agreement protocol: the live
// set, round bookkeeping, votes, and the global barriers. In the real
// system this state is replicated by the group-membership messages; the
// simulation centralizes it (as the paper's oracle did) while the probe
// traffic and recovery work remain real per-cell activity.
type Coordinator struct {
	Mode AgreementMode
	// OracleFailed reports ground truth: has this cell failed or been
	// corrupted? Wired by the fault injector in Oracle mode.
	OracleFailed func(cell int) bool
	// OnDeclaredDead is invoked once when agreement declares a cell
	// dead; the cell layer uses it to force the (possibly still
	// running, corrupt) cell to stop — the consensus-gated reboot.
	OnDeclaredDead func(cell int)
	// AutoReintegrate lets the recovery master reboot repaired cells.
	AutoReintegrate bool
	// BrokenHardware marks nodes that fail the master's diagnostics.
	BrokenHardware map[int]bool
	// OnBarrier1Open, when set (fault injectors), fires once per round at
	// the moment the first member crosses barrier 1 — the window between
	// the two recovery barriers the v2 campaign injects faults into.
	OnBarrier1Open func(suspect, coordinator int)
	// OnJoinBarrier1Open is the join-round analogue: it fires once per
	// join round when the first member crosses barrier 1 — the window the
	// reintegration fault scenarios inject into.
	OnJoinBarrier1Open func(joiner, coordinator int)

	cells      int
	nodesByCel [][]int
	live       map[int]bool
	monitors   map[int]*Monitor

	cur       *round
	completed map[string]bool
	waiters   []*sim.Task

	votedDown  map[int]map[int]int // accuser -> suspect -> times voted down
	forcedDead map[int]bool

	// pendingJoins holds the commit future of each cell whose reboot
	// controller has requested re-admission; resolved (true = committed,
	// false = aborted) exactly once per request.
	pendingJoins map[int]*sim.Future
	joinSeq      int

	// Measurements for the Table 7.4 harness.
	LastDetectAt   sim.Time // latest "entered recovery" time of any cell
	FirstDetectAt  sim.Time
	RecoveryEndAt  sim.Time
	RoundsRun      int
	FalseAlarms    int
	DeadDeclared   []int
	recoveryActive int
	// RoundRestarts counts rounds whose coordinator died mid-round and
	// were deterministically restarted under the next live member.
	RoundRestarts int
	// JoinRounds counts join rounds run; Rejoins lists the cells whose
	// join round committed, in commit order; LastRejoinAt is the latest
	// commit time (the capacity-restoration measurement's raw input).
	JoinRounds   int
	Rejoins      []int
	LastRejoinAt sim.Time
}

// round is one agreement/recovery round.
type round struct {
	key     string
	suspect int
	accuser int
	members map[int]bool // live cells minus suspect
	joined  map[int]bool // members that have taken up the round
	votes   map[int]bool // cell -> votesDead
	// deadVotes counts the true entries in votes, maintained incrementally
	// on insert and withdrawal so the tally never rescans the vote map —
	// the rescans were O(members²) per round at large cell counts.
	deadVotes int
	verdict   *sim.Future // resolves to map[int]bool of confirmed-dead cells
	applied   bool
	barrier1  *sim.Barrier
	barrier2  *sim.Barrier
	b1Seen    map[int]bool
	b2Seen    map[int]bool
	done      map[int]bool
	entered   map[int]sim.Time

	// coordinator is the member that drives the round's post-barrier
	// work (diagnostics, reintegration): the lowest live member at round
	// creation. If it dies mid-round the round restarts deterministically
	// under the next live member (CellDiedMidRound).
	coordinator int
	b1Fired     bool // OnBarrier1Open fired

	corruptAccuser int // -1, or a cell the round branded corrupt

	// join marks a join round: suspect is the joiner (not a member), the
	// vote is about reachability of the fresh image, and the verdict set
	// {joiner} means "admit". aborted is set when the joiner dies
	// mid-round; committed guards the one-shot commit.
	join      bool
	aborted   bool
	committed bool
}

// NewCoordinator builds the coordinator for `cells` cells, each owning the
// listed nodes.
func NewCoordinator(cells int, nodesByCell [][]int, mode AgreementMode) *Coordinator {
	c := &Coordinator{
		Mode:       mode,
		cells:      cells,
		nodesByCel: nodesByCell,
		live:       make(map[int]bool),
		monitors:   make(map[int]*Monitor),
		completed:    make(map[string]bool),
		votedDown:    make(map[int]map[int]int),
		forcedDead:   make(map[int]bool),
		pendingJoins: make(map[int]*sim.Future),
	}
	for i := 0; i < cells; i++ {
		c.live[i] = true
	}
	return c
}

func (c *Coordinator) register(m *Monitor) { c.monitors[m.CellID] = m }

// isLive reports whether a cell is in the current live set.
func (c *Coordinator) isLive(cell int) bool { return c.live[cell] }

// liveSet returns the live cells, ascending.
func (c *Coordinator) liveSet() []int { return sortedCells(c.live) }

// LiveCount returns the size of the live set.
func (c *Coordinator) LiveCount() int { return len(c.live) }

// neighborOf returns the next live cell after `cell` in the monitoring
// ring, or -1 when alone.
func (c *Coordinator) neighborOf(cell int) int {
	for i := 1; i < c.cells; i++ {
		n := (cell + i) % c.cells
		if c.live[n] {
			return n
		}
	}
	return -1
}

// masterOf returns the recovery master: the lowest live cell.
func (c *Coordinator) masterOf() int {
	ls := c.liveSet()
	if len(ls) == 0 {
		return -1
	}
	return ls[0]
}

// firstNodeOf returns a cell's first node (its clock word's home).
func (c *Coordinator) firstNodeOf(cell int) int { return c.nodesByCel[cell][0] }

// nodesOf returns a cell's nodes.
func (c *Coordinator) nodesOf(cell int) []int { return c.nodesByCel[cell] }

// ensureRound joins (or creates) the round for this alert on behalf of
// cellID. A nil round with retry=false means the alert is stale: its round
// already completed, the suspect is already dead, or this cell already
// served the active round. retry=true means the coordinator is busy with a
// different suspect and the caller should re-present the alert once the
// active round drains.
func (c *Coordinator) ensureRound(alert *alertMsg, cellID int) (*round, bool) {
	key := fmt.Sprintf("%d:%d", alert.Accuser, alert.Sequence)
	if c.cur != nil {
		// An active round for this suspect folds late members in even
		// if the verdict has already landed — the barriers need every
		// member, and the live set may already exclude the suspect.
		if c.cur.suspect == alert.Suspect && c.cur.members[cellID] &&
			!c.cur.done[cellID] && !c.cur.joined[cellID] {
			c.cur.joined[cellID] = true
			return c.cur, false
		}
		if c.cur.suspect == alert.Suspect {
			c.completed[key] = true // duplicate accusation, already serving
			return nil, false
		}
		// Busy with a different suspect: this alert still needs a round.
		return nil, c.live[alert.Suspect]
	}
	if c.completed[key] {
		return nil, false
	}
	if !c.live[alert.Suspect] {
		c.completed[key] = true
		return nil, false
	}
	r := &round{
		key:     key,
		suspect: alert.Suspect,
		accuser: alert.Accuser,
		members: make(map[int]bool),
		joined:  map[int]bool{cellID: true},
		votes:   make(map[int]bool),
		verdict: &sim.Future{},
		b1Seen:  make(map[int]bool),
		b2Seen:  make(map[int]bool),
		done:    make(map[int]bool),
		entered: make(map[int]sim.Time),

		corruptAccuser: -1,
	}
	for cell := range c.live {
		if cell == alert.Suspect {
			continue
		}
		// A cell whose monitor already died (simultaneous failure, not yet
		// declared by its own round) can never join or arrive at the
		// barriers — enrolling it would hang every survivor.
		if mon := c.monitors[cell]; mon != nil && mon.dead {
			continue
		}
		r.members[cell] = true
	}
	if ms := sortedCells(r.members); len(ms) > 0 {
		r.coordinator = ms[0]
	}
	// Hand the alert to any enrolled member that has not heard it. The
	// accuser's cast went to the live set of cast time — a cell that
	// rejoined between the cast and round creation is a member now but was
	// not a recipient then, and a member without the alert never arrives
	// at the barriers (every survivor would hang). The direct insertion
	// runs in the round creator's global section, so it is deterministic;
	// members the in-flight cast still reaches later just see a duplicate
	// accusation, which the completed table absorbs.
	for _, m := range sortedCells(r.members) {
		if m == cellID {
			continue
		}
		if mon := c.monitors[m]; mon != nil && !mon.dead && !mon.alerting[alert.Suspect] {
			mon.alerting[alert.Suspect] = true
			// The push must come from the member's own shard: a direct
			// push here would wake its recovery loop on the wrong engine.
			relay := mon
			relay.eng().Go(fmt.Sprintf("cell%d.alertrelay", relay.CellID),
				func(rt *sim.Task) { relay.alerts.Push(alert) })
		}
	}
	r.barrier1 = sim.NewBarrier(len(r.members))
	r.barrier2 = sim.NewBarrier(len(r.members))
	c.cur = r
	c.RoundsRun++
	return r, false
}

// agree resolves the round's verdict for one member cell and returns the
// set of confirmed-dead cells (empty = false alarm). Round state is only
// touched in global sections; the liveness probe is real RPC traffic from
// the member's cell and runs on its own shard between them.
func (c *Coordinator) agree(t *sim.Task, mon *Monitor, r *round) map[int]bool {
	needVote := false
	mon.global(t, func() {
		if r.verdict.Ready() {
			return
		}
		switch {
		case c.forcedDead[r.suspect]:
			// Corrupt-accuser rule already branded the suspect.
			c.applyVerdict(r, map[int]bool{r.suspect: true})
		case c.Mode == Oracle:
			dead := map[int]bool{}
			if c.OracleFailed != nil && c.OracleFailed(r.suspect) {
				dead[r.suspect] = true
			}
			c.applyVerdict(r, dead)
		default:
			// Voting: this member probes and records its vote; the
			// last vote tallies.
			_, voted := r.votes[mon.CellID]
			needVote = !voted
		}
	})
	if needVote {
		alive := mon.probe(t, r.suspect)
		mon.global(t, func() {
			if _, voted := r.votes[mon.CellID]; voted {
				return
			}
			r.votes[mon.CellID] = !alive
			dead := int64(0)
			if r.votes[mon.CellID] {
				dead = 1
				r.deadVotes++
			}
			mon.Tracer.Emit(t.Now(), trace.Vote, int64(r.suspect), dead, "")
			c.tallyVotes(r)
		})
	}
	var v any
	mon.global(t, func() { v, _ = r.verdict.Wait(t) })
	return v.(map[int]bool)
}

// agreeJoin resolves the join round's admit/abort verdict for one member
// and reports whether the joiner was admitted. Oracle mode asks ground
// truth whether the fresh image is healthy (as it does for deaths); Vote
// mode probes the joiner — real RPC traffic against its endpoint, which
// stays untrusted until the commit.
func (c *Coordinator) agreeJoin(t *sim.Task, mon *Monitor, r *round) bool {
	needVote := false
	mon.global(t, func() {
		if r.verdict.Ready() {
			return
		}
		switch {
		case c.Mode == Oracle:
			admit := true
			if c.OracleFailed != nil && c.OracleFailed(r.suspect) {
				admit = false
			}
			c.applyJoinVerdict(r, admit)
		default:
			_, voted := r.votes[mon.CellID]
			needVote = !voted
		}
	})
	if needVote {
		alive := mon.probe(t, r.suspect)
		mon.global(t, func() {
			if _, voted := r.votes[mon.CellID]; voted {
				return
			}
			r.votes[mon.CellID] = !alive
			dead := int64(0)
			if !alive {
				dead = 1
				r.deadVotes++
			}
			mon.Tracer.Emit(t.Now(), trace.Vote, int64(r.suspect), dead, "join")
			c.tallyJoinVotes(r)
		})
	}
	var v any
	mon.global(t, func() { v, _ = r.verdict.Wait(t) })
	return v.(map[int]bool)[r.suspect]
}

// tallyVotes resolves the verdict once every (still-live) member has
// voted. It is re-run when a member dies mid-agreement, so a dead voter
// can never hang the round.
func (c *Coordinator) tallyVotes(r *round) {
	if r.verdict.Ready() || len(r.members) == 0 || len(r.votes) < len(r.members) {
		return
	}
	dead := map[int]bool{}
	if r.deadVotes*2 > len(r.members) {
		dead[r.suspect] = true
	}
	c.applyVerdict(r, dead)
}

// noteBarrier1Open fires the fault-injection hook the first time any member
// crosses barrier 1 — the inter-barrier window of the round.
func (c *Coordinator) noteBarrier1Open(r *round) {
	if r.b1Fired {
		return
	}
	r.b1Fired = true
	if c.OnBarrier1Open != nil {
		c.OnBarrier1Open(r.suspect, r.coordinator)
	}
}

// applyVerdict commits a round's outcome: live-set updates, the corrupt-
// accuser rule, and the forced stop of cells declared dead.
func (c *Coordinator) applyVerdict(r *round, dead map[int]bool) {
	if r.applied {
		return
	}
	r.applied = true
	if len(dead) == 0 {
		c.FalseAlarms++
		// Corrupt-accuser rule (§4.3): two voted-down alerts for the
		// same suspect brand the accuser corrupt.
		if c.votedDown[r.accuser] == nil {
			c.votedDown[r.accuser] = make(map[int]int)
		}
		c.votedDown[r.accuser][r.suspect]++
		if c.votedDown[r.accuser][r.suspect] >= 2 {
			r.corruptAccuser = r.accuser
			c.forcedDead[r.accuser] = true
		}
	} else {
		for _, cell := range sortedCells(dead) {
			delete(c.live, cell)
			c.DeadDeclared = append(c.DeadDeclared, cell)
			if mon := c.monitors[cell]; mon != nil {
				mon.Stop()
			}
			if c.OnDeclaredDead != nil {
				c.OnDeclaredDead(cell)
			}
		}
	}
	r.verdict.Set(dead, nil)
}

// noteRecoveryEntered records detection latency (Table 7.4's measurement:
// latency until the last cell enters recovery).
func (c *Coordinator) noteRecoveryEntered(r *round, cell int, at sim.Time) {
	r.entered[cell] = at
	if c.recoveryActive == 0 {
		c.FirstDetectAt = at
	}
	c.recoveryActive++
	if at > c.LastDetectAt {
		c.LastDetectAt = at
	}
}

// noteRecoveryDone records recovery completion times.
func (c *Coordinator) noteRecoveryDone(r *round, cell int, at sim.Time) {
	if at > c.RecoveryEndAt {
		c.RecoveryEndAt = at
	}
}

// finishRound marks a member's round participation complete; the last
// member closes the round.
func (c *Coordinator) finishRound(r *round, cell int) {
	r.done[cell] = true
	c.checkRoundDone(r)
}

func (c *Coordinator) checkRoundDone(r *round) {
	if r == nil {
		return
	}
	for m := range r.members {
		if !r.done[m] && c.live[m] {
			return
		}
	}
	c.completed[r.key] = true
	if c.cur == r {
		c.cur = nil
		c.recoveryActive = 0
	}
	if r.join {
		// Backstop: a join round that drained without committing (e.g.
		// every member died) must still resolve its requester, or the
		// reboot controller would wait forever. No-op after commitJoin.
		c.resolveJoin(r, false)
	}
}

// CellDiedMidRound handles a member cell dying while a round is in flight
// (multi-failure tolerance): barrier membership shrinks so the survivors
// cannot hang, the dead member's vote is withdrawn and the agreement
// re-tallied, and — when the dead member was the round coordinator — the
// round deterministically restarts under the next live member.
func (c *Coordinator) CellDiedMidRound(cell int) {
	r := c.cur
	if r == nil {
		return
	}
	if r.join && cell == r.suspect && !c.live[cell] {
		// The joiner itself died mid-join (a second fault landed during
		// reintegration). The members are not waiting on it — it holds no
		// barrier slot — so the round drains normally; the commit is
		// cancelled and the requester told to retry.
		r.aborted = true
		if !r.verdict.Ready() {
			c.applyJoinVerdict(r, false)
		}
		c.checkRoundDone(r)
		return
	}
	if !r.members[cell] {
		return
	}
	delete(r.members, cell)
	if !r.b1Seen[cell] {
		r.barrier1.SetParties(len(r.members))
	}
	if !r.b2Seen[cell] {
		r.barrier2.SetParties(len(r.members))
	}
	// Withdraw the dead member's vote (it may never have voted; a round
	// must not wait on a dead voter) and re-tally the survivors.
	if r.votes[cell] {
		r.deadVotes--
	}
	delete(r.votes, cell)
	if r.join {
		c.tallyJoinVotes(r)
	} else {
		c.tallyVotes(r)
	}
	if cell == r.coordinator {
		if ms := sortedCells(r.members); len(ms) > 0 {
			r.coordinator = ms[0]
			c.RoundRestarts++
			if mon := c.monitors[r.coordinator]; mon != nil {
				mon.Tracer.Emit(mon.M.Eng.Now(), trace.RoundRestart,
					int64(cell), int64(r.coordinator), "")
			}
		}
	}
	c.checkRoundDone(r)
}

// RecoveryIdle reports that no agreement/recovery round is active. Harness
// code uses it to wait until multi-fault recovery has fully drained — the
// live set shrinks at verdict time, before the recovery phases run.
func (c *Coordinator) RecoveryIdle() bool { return c.cur == nil }

// reintegrate returns a repaired cell to the live set and scrubs every
// piece of survivor bookkeeping that went stale while it was dead. The
// round machinery was written when the live set only shrank; a cell coming
// *back* invalidates three things:
//
//   - corrupt-accuser strikes by or about the old incarnation (votedDown):
//     the fresh image never alerted anyone, and strikes about it describe
//     a kernel that no longer exists;
//   - completed-round keys of the old incarnation's alerts ("accuser:seq"):
//     the fresh monitor's sequence numbers restart at 1, so a stale key
//     would silently swallow its first alerts;
//   - peer monitors' per-cell caches (lastClock, alerting): a stale clock
//     value can false-hint against the fresh image's restarted clock, and
//     a stuck alerting flag would suppress real future alerts about it.
func (c *Coordinator) reintegrate(cell int) {
	c.live[cell] = true
	delete(c.forcedDead, cell)
	delete(c.votedDown, cell)
	for _, rows := range c.votedDown {
		delete(rows, cell)
	}
	prefix := fmt.Sprintf("%d:", cell)
	var stale []string
	for key := range c.completed {
		stale = append(stale, key)
	}
	sort.Strings(stale)
	for _, key := range stale {
		if strings.HasPrefix(key, prefix) {
			delete(c.completed, key)
		}
	}
	for _, id := range sortedMonitorIDs(c.monitors) {
		if m := c.monitors[id]; m.CellID != cell {
			delete(m.lastClock, cell)
			delete(m.alerting, cell)
		}
	}
}

// Reintegrate is the exported form used by the cell reboot path.
func (c *Coordinator) Reintegrate(cell int) { c.reintegrate(cell) }

// RequestJoin asks the membership layer to re-admit a microbooted cell
// through a coordinator-led join round. It must run in a global section
// (the reboot controller's context). The returned future resolves to a
// bool: true when the round committed and the joiner is live again, false
// when it aborted (the joiner died mid-join, or every member did). The
// int is the join sequence the joiner must announce with. The joiner's
// fresh monitor must already be registered (NewMonitor) but not started:
// until the commit it is untrusted and passive — the live members run the
// round; the joiner only answers their probes over the validated RPC path.
func (c *Coordinator) RequestJoin(joiner int) (*sim.Future, int) {
	if c.live[joiner] {
		f := &sim.Future{}
		f.Set(true, nil)
		return f, 0
	}
	if f := c.pendingJoins[joiner]; f != nil {
		return f, c.joinSeq
	}
	c.joinSeq++
	f := &sim.Future{}
	c.pendingJoins[joiner] = f
	return f, c.joinSeq
}

// ensureJoinRound joins (or creates) the join round for an announcement,
// mirroring ensureRound: a nil round with retry=false means the request is
// stale (already served, joiner already live, or no longer wanted);
// retry=true means the coordinator is busy with another round and the
// member should re-present the announcement once it drains.
func (c *Coordinator) ensureJoinRound(msg *joinMsg, cellID int) (*round, bool) {
	key := fmt.Sprintf("join:%d:%d", msg.Joiner, msg.Sequence)
	if c.cur != nil {
		if c.cur.join && c.cur.suspect == msg.Joiner && c.cur.members[cellID] &&
			!c.cur.done[cellID] && !c.cur.joined[cellID] {
			c.cur.joined[cellID] = true
			return c.cur, false
		}
		if c.cur.join && c.cur.suspect == msg.Joiner {
			c.completed[key] = true // duplicate announcement, already serving
			return nil, false
		}
		// Busy with a different round (a death round outranks a join):
		// retry while the reboot controller still wants the join.
		return nil, c.pendingJoins[msg.Joiner] != nil
	}
	if c.completed[key] {
		return nil, false
	}
	if c.live[msg.Joiner] || c.pendingJoins[msg.Joiner] == nil {
		c.completed[key] = true
		return nil, false
	}
	r := &round{
		key:     key,
		suspect: msg.Joiner,
		accuser: msg.Joiner,
		members: make(map[int]bool),
		joined:  map[int]bool{cellID: true},
		votes:   make(map[int]bool),
		verdict: &sim.Future{},
		b1Seen:  make(map[int]bool),
		b2Seen:  make(map[int]bool),
		done:    make(map[int]bool),
		entered: make(map[int]sim.Time),

		corruptAccuser: -1,
		join:           true,
	}
	for cell := range c.live {
		if mon := c.monitors[cell]; mon != nil && mon.dead {
			continue
		}
		r.members[cell] = true
	}
	if ms := sortedCells(r.members); len(ms) > 0 {
		r.coordinator = ms[0]
	}
	r.barrier1 = sim.NewBarrier(len(r.members))
	r.barrier2 = sim.NewBarrier(len(r.members))
	c.cur = r
	c.RoundsRun++
	c.JoinRounds++
	return r, false
}

// tallyJoinVotes resolves the admit/abort verdict once every still-live
// member has voted on the joiner's reachability: admission needs a strict
// majority of "reachable" votes, symmetric to the death tally.
func (c *Coordinator) tallyJoinVotes(r *round) {
	if r.verdict.Ready() || len(r.members) == 0 || len(r.votes) < len(r.members) {
		return
	}
	reachable := len(r.votes) - r.deadVotes
	c.applyJoinVerdict(r, reachable*2 > len(r.members))
}

// applyJoinVerdict commits the join round's agreement outcome. The verdict
// future resolves to the same map[int]bool shape as a death round:
// {joiner: true} = admit, empty = abort. Aborts resolve the requester
// immediately; admits resolve at commit, after the barriers.
func (c *Coordinator) applyJoinVerdict(r *round, admit bool) {
	if r.applied {
		return
	}
	r.applied = true
	verdict := map[int]bool{}
	if admit && !r.aborted {
		verdict[r.suspect] = true
	} else {
		c.resolveJoin(r, false)
	}
	r.verdict.Set(verdict, nil)
}

// noteJoinBarrier1Open fires the join-round fault-injection hook once, when
// the first member crosses barrier 1.
func (c *Coordinator) noteJoinBarrier1Open(r *round) {
	if r.b1Fired {
		return
	}
	r.b1Fired = true
	if c.OnJoinBarrier1Open != nil {
		c.OnJoinBarrier1Open(r.suspect, r.coordinator)
	}
}

// commitJoin is run by the round coordinator after barrier 2: the joiner
// enters the live set, every piece of stale bookkeeping about the old
// incarnation is scrubbed, and the Rejoin control-ring event marks the
// taint boundary for the forensic walk. If the joiner died between the
// vote and the commit, the commit is cancelled instead.
func (c *Coordinator) commitJoin(r *round, at sim.Time, tr *trace.Tracer) {
	if r.committed {
		return
	}
	r.committed = true
	if r.aborted {
		c.resolveJoin(r, false)
		return
	}
	joiner := r.suspect
	c.reintegrate(joiner)
	c.Rejoins = append(c.Rejoins, joiner)
	c.LastRejoinAt = at
	tr.Emit(at, trace.Rejoin, int64(joiner), int64(r.coordinator), "")
	c.resolveJoin(r, true)
}

// resolveJoin resolves the pending join future exactly once.
func (c *Coordinator) resolveJoin(r *round, ok bool) {
	if f := c.pendingJoins[r.suspect]; f != nil {
		f.Set(ok, nil)
		delete(c.pendingJoins, r.suspect)
	}
}

// Monitors exposes the registered monitors by cell (read-only use).
func (c *Coordinator) Monitors() map[int]*Monitor { return c.monitors }

// MarkDead removes a cell from the live set without agreement — used when
// a cell panics itself (it cannot vote about its own death) and by test
// setup.
func (c *Coordinator) MarkDead(cell int) {
	delete(c.live, cell)
	if mon := c.monitors[cell]; mon != nil {
		mon.Stop()
	}
	c.CellDiedMidRound(cell)
	c.checkRoundDone(c.cur)
}
