// Package membership implements Hive's failure detection and recovery
// (§4.3 of the paper):
//
//   - Heuristic failure hints during normal operation: RPC timeouts, bus
//     errors, clock monitoring (each cell's clock handler checks a
//     neighbour's shared clock word every tick via the careful reference
//     protocol), and consistency-check failures from careful reads.
//   - Confirmation by distributed agreement before any cell is declared
//     failed. The paper's experiments used an oracle (the agreement
//     protocol was future work); we provide both the oracle and a real
//     broadcast-voting protocol, selectable per configuration.
//   - The corrupt-accuser rule: a cell that broadcasts the same alert twice
//     and is voted down both times is itself considered corrupt.
//   - Recovery: user processes suspended, a double global barrier
//     synchronizing TLB flush/remote-unmap (phase 1) with firewall
//     revocation and preemptive discard (phase 2), dependent-process
//     killing, election of a recovery master, hardware diagnostics, and
//     optional reboot/reintegration of repaired cells.
package membership

import (
	"fmt"
	"sort"

	"repro/internal/machine"
	"repro/internal/rpc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// AgreementMode selects how alerts are confirmed.
type AgreementMode int

const (
	// Oracle consults ground truth, as the paper's experiments did
	// ("simulated by an oracle", §4.3/§7.2).
	Oracle AgreementMode = iota
	// Vote runs the real probe-and-majority-vote protocol.
	Vote
)

// Timing parameters.
const (
	// TickInterval is the clock interrupt period (10 ms UNIX tick).
	TickInterval = 10 * sim.Millisecond
	// DefaultCheckEvery is how many ticks pass between neighbour clock
	// checks; raising it shrinks monitoring cost and widens the window
	// of vulnerability (the §4.3 tradeoff).
	DefaultCheckEvery = 2
	// ProbeTimeout bounds one agreement ping.
	ProbeTimeout = 300 * sim.Microsecond
	// Phase1Base and Phase2Base are the fixed per-cell costs of the
	// recovery phases (process table scans, dangling-reference cleanup);
	// with per-page work they produce the paper's 40-80 ms recovery.
	Phase1Base = 14 * sim.Millisecond
	Phase2Base = 24 * sim.Millisecond
	// DiagnosticsCost is the recovery master's hardware check of a
	// failed node.
	DiagnosticsCost = 25 * sim.Millisecond
	// JoinPhase1Base and JoinPhase2Base are the per-member costs of the
	// join round's two phases (re-validating the joiner's identity, then
	// dropping stale state about the old incarnation and warming shared
	// caches). Deliberately cheaper than the death phases: user processes
	// keep running throughout a join.
	JoinPhase1Base = 6 * sim.Millisecond
	JoinPhase2Base = 8 * sim.Millisecond
)

// RPC procedure numbers (range 180-199).
const (
	ProcAlert rpc.ProcID = 180 + iota // failure alert broadcast
	ProcPing                          // agreement liveness probe
	ProcJoin                          // join-round announcement from a microbooted cell
)

// Hooks connect the monitor to the rest of the cell.
type Hooks struct {
	SuspendUser    func()
	ResumeUser     func()
	Phase1         func(t *sim.Task)
	Phase2         func(t *sim.Task, failed map[int]bool) int
	Finish         func()
	KillDependents func(failed map[int]bool) int
	// Panic shuts this cell down (it was declared corrupt).
	Panic func(reason string)
	// Reintegrate tells the cell a failed peer was repaired and
	// rebooted; stale state about it must be dropped.
	Reintegrate func(cell int)
}

// alertMsg is the wire form of a failure alert.
type alertMsg struct {
	Suspect  int
	Accuser  int
	Reason   string
	Sequence int
}

// joinMsg is the wire form of a join-round announcement: a microbooted
// cell asking the live members to re-admit it.
type joinMsg struct {
	Joiner   int
	Sequence int
}

// Monitor is one cell's failure detector and recovery agent.
type Monitor struct {
	CellID int
	M      *machine.Machine
	EP     *rpc.Endpoint
	Coord  *Coordinator
	Hooks  Hooks
	// NodeIDs this cell owns (clock words to tick).
	NodeIDs []int
	// ReadNeighborClock performs the careful clock read of the given
	// cell, returning its clock value or an error (wired to the careful
	// reference protocol by the cell layer).
	ReadNeighborClock func(t *sim.Task, cell int) (uint64, error)

	// CheckEvery overrides DefaultCheckEvery when positive.
	CheckEvery int

	// Tracer records this cell's detection and recovery events (nil
	// no-ops; set by the cell layer).
	Tracer *trace.Tracer

	alerts    *sim.Queue
	lastClock map[int]uint64
	alerting  map[int]bool // suspects with an active alert from this cell
	dead      bool
	seq       int
	Metrics   *stats.Registry
}

// NewMonitor builds a cell's monitor; Start must be called to launch its
// clock and recovery tasks.
func NewMonitor(m *machine.Machine, ep *rpc.Endpoint, coord *Coordinator, cellID int, nodeIDs []int) *Monitor {
	mon := &Monitor{
		CellID: cellID, M: m, EP: ep, Coord: coord, NodeIDs: nodeIDs,
		alerts:    &sim.Queue{},
		lastClock: make(map[int]uint64),
		alerting:  make(map[int]bool),
		Metrics:   stats.NewRegistry(),
	}
	coord.register(mon)
	mon.registerServices()
	return mon
}

// Start launches the clock tick task, the neighbour watch task, and the
// recovery agent task.
func (mon *Monitor) Start() {
	eng := mon.eng()
	eng.Go(fmt.Sprintf("cell%d.clock", mon.CellID), mon.clockLoop)
	eng.Go(fmt.Sprintf("cell%d.watch", mon.CellID), mon.watchLoop)
	eng.Go(fmt.Sprintf("cell%d.recovery", mon.CellID), mon.recoveryLoop)
}

// eng returns the shard this cell's monitor tasks run on.
func (mon *Monitor) eng() *sim.Engine { return mon.EP.Engine() }

// global runs fn with every shard quiescent. Coordinator and round state
// is shared across every member cell — in the real system it is replicated
// by membership messages; here a sharded run touches it only in the global
// phase, where no cell shard can race it. In a classic run fn runs inline.
func (mon *Monitor) global(t *sim.Task, fn func()) { mon.eng().Global(t, fn) }

// Stop marks the monitor dead (its cell failed or panicked).
func (mon *Monitor) Stop() {
	mon.dead = true
	mon.alerts.Close()
}

// proc returns a live local processor.
func (mon *Monitor) proc() *machine.Processor {
	for _, n := range mon.NodeIDs {
		p := mon.M.Nodes[n].Procs[0]
		if !p.Halted() {
			return p
		}
	}
	return mon.M.Nodes[mon.NodeIDs[0]].Procs[0]
}

// clockLoop ticks the cell's clock words (§4.3). It runs alone so the
// ticks land on schedule: the neighbour watch in watchLoop goes through
// the careful reference protocol, whose stealable CPU bursts can stall
// for tens of milliseconds when the cell's processor is saturated with
// interrupt-level RPC service — and a cell whose own clock freezes while
// it waits on a busy neighbour reads as dead to its watcher.
func (mon *Monitor) clockLoop(t *sim.Task) {
	for !mon.dead {
		t.Sleep(TickInterval)
		if mon.dead {
			return
		}
		if mon.proc().Halted() {
			return
		}
		for _, n := range mon.NodeIDs {
			if p := mon.M.Nodes[n].Procs[0]; !p.Halted() {
				mon.M.TickClock(t, p, n)
			}
		}
	}
}

// watchLoop monitors the neighbour's clock word (§4.3): a shared location
// that fails to increment, or a bus error on the read, is a failure hint.
func (mon *Monitor) watchLoop(t *sim.Task) {
	every := mon.CheckEvery
	if every <= 0 {
		every = DefaultCheckEvery
	}
	for !mon.dead {
		t.Sleep(sim.Time(every) * TickInterval)
		if mon.dead {
			return
		}
		if mon.proc().Halted() {
			return
		}
		nb := mon.Coord.neighborOf(mon.CellID)
		if nb < 0 || nb == mon.CellID {
			continue
		}
		val, err := mon.readClock(t, nb)
		if err != nil {
			mon.Hint(nb, "clock read bus error")
			continue
		}
		mon.Tracer.Emit(t.Now(), trace.Heartbeat, int64(nb), int64(val), "")
		if last, ok := mon.lastClock[nb]; ok && val == last {
			mon.Hint(nb, "clock word failed to increment")
		}
		mon.lastClock[nb] = val
	}
}

func (mon *Monitor) readClock(t *sim.Task, cell int) (uint64, error) {
	if mon.ReadNeighborClock != nil {
		return mon.ReadNeighborClock(t, cell)
	}
	return mon.M.ReadClockWord(t, mon.proc(), mon.Coord.firstNodeOf(cell))
}

// Hint receives a failure hint about a suspect cell from any detector
// (clock monitor, RPC timeout, careful reference failure). It broadcasts an
// alert unless one is already active for that suspect.
func (mon *Monitor) Hint(suspect int, reason string) {
	if mon.dead || suspect == mon.CellID || !mon.Coord.isLive(suspect) {
		return
	}
	if mon.alerting[suspect] {
		return
	}
	mon.alerting[suspect] = true
	mon.seq++
	mon.Metrics.Counter("membership.hints").Inc()
	mon.Tracer.Emit(mon.eng().Now(), trace.Hint, int64(suspect), 0, reason)
	msg := &alertMsg{Suspect: suspect, Accuser: mon.CellID, Reason: reason, Sequence: mon.seq}
	// Deliver locally, then broadcast. The broadcast runs as its own
	// task since Hint may be called from interrupt/engine context.
	mon.alerts.Push(msg)
	mon.eng().Go(fmt.Sprintf("cell%d.alertcast", mon.CellID), func(t *sim.Task) {
		span := mon.Tracer.Begin(t.Now(), "recovery:alert")
		mon.Tracer.Emit(t.Now(), trace.Alert, int64(suspect), 0, reason)
		var peers []int
		for _, c := range mon.Coord.liveSet() {
			if c != mon.CellID && c != suspect {
				peers = append(peers, c)
			}
		}
		// Fan the alert out concurrently — one sender task per peer — so
		// the cast completes in one round-trip instead of len(peers) of
		// them. At 32+ cells the serial cast dominated detection latency.
		join := sim.NewBarrier(len(peers) + 1)
		for _, c := range peers {
			c := c
			mon.eng().Go(fmt.Sprintf("cell%d.alert%d", mon.CellID, c), func(t *sim.Task) {
				//hive:lint-ignore errdrop alert cast is best-effort: a peer that cannot hear the alert is itself suspect and will be caught by its own consistency round
				mon.EP.Call(t, mon.proc(), c, ProcAlert, msg,
					rpc.CallOpts{DataBytes: 64, NoHint: true})
				join.Await(t)
			})
		}
		join.Await(t)
		mon.Tracer.End(t.Now(), span, "recovery:alert", int64(len(peers)))
	})
}

// recoveryLoop consumes alerts, runs agreement, and drives the double-
// barrier recovery rounds.
func (mon *Monitor) recoveryLoop(t *sim.Task) {
	for {
		v, ok := mon.alerts.Pop(t)
		if !ok {
			return
		}
		if mon.dead {
			return
		}
		switch msg := v.(type) {
		case *alertMsg:
			// No liveness precheck here: the verdict may already have
			// removed the suspect from the live set while this member was
			// still on its way to the round; ensureRound folds it in.
			var round *round
			var retry bool
			mon.global(t, func() { round, retry = mon.Coord.ensureRound(msg, mon.CellID) })
			if round == nil {
				if retry {
					// The coordinator is serving a round for a different
					// suspect. The alert is not stale — this suspect still
					// needs its own round once the active one drains — and
					// the accuser will not re-broadcast (its alerting flag
					// stays up while it serves the round it created), so
					// requeue the alert and try again next tick.
					t.Sleep(TickInterval)
					if mon.dead {
						return
					}
					mon.alerts.Push(msg)
					continue
				}
				delete(mon.alerting, msg.Suspect)
				continue
			}
			mon.runRound(t, round)
			delete(mon.alerting, msg.Suspect)
		case *joinMsg:
			var round *round
			var retry bool
			mon.global(t, func() { round, retry = mon.Coord.ensureJoinRound(msg, mon.CellID) })
			if round == nil {
				if retry {
					// A death round is in flight; the join waits its turn.
					t.Sleep(TickInterval)
					if mon.dead {
						return
					}
					mon.alerts.Push(msg)
				}
				continue
			}
			mon.runJoinRound(t, round)
		}
	}
}

// runRound executes one agreement + recovery round on this cell.
func (mon *Monitor) runRound(t *sim.Task, r *round) {
	// All cells temporarily suspend user-level processes (§3.1).
	if mon.Hooks.SuspendUser != nil {
		mon.Hooks.SuspendUser()
	}
	mon.Metrics.Counter("membership.rounds").Inc()

	// Agreement: oracle or probe-and-vote.
	detectSpan := mon.Tracer.Begin(t.Now(), "recovery:detect")
	verdict := mon.Coord.agree(t, mon, r)
	mon.Tracer.End(t.Now(), detectSpan, "recovery:detect", int64(len(verdict)))

	if mon.dead {
		return
	}
	if r.corruptAccuser == mon.CellID {
		// The other cells concluded we are corrupt: panic (shut down)
		// rather than keep damaging the system.
		if mon.Hooks.Panic != nil {
			mon.Hooks.Panic("voted corrupt after repeated false alerts")
		}
		return
	}

	if len(verdict) == 0 {
		// False alarm: resume. If this round branded the accuser
		// corrupt, every other cell now alerts about the accuser.
		if mon.Hooks.ResumeUser != nil {
			mon.Hooks.ResumeUser()
		}
		accused := r.corruptAccuser
		mon.global(t, func() { mon.Coord.finishRound(r, mon.CellID) })
		if accused >= 0 && accused != mon.CellID {
			mon.Hint(accused, "corrupt after repeated voted-down alerts")
		}
		return
	}

	// Confirmed failure: enter recovery.
	mon.global(t, func() { mon.Coord.noteRecoveryEntered(r, mon.CellID, t.Now()) })
	mon.Metrics.Counter("membership.recoveries").Inc()

	proc := mon.proc()
	b1Span := mon.Tracer.Begin(t.Now(), "recovery:barrier1")
	proc.Use(t, Phase1Base)
	if mon.dead {
		// This member died during phase 1: it must not arrive at the
		// barrier, whose party count no longer includes it — a dead
		// member's arrival would open the barrier early and strand a
		// live member in the next generation.
		return
	}
	if mon.Hooks.Phase1 != nil {
		mon.Hooks.Phase1(t)
	}
	// The barrier and its bookkeeping live in the global phase: every
	// member arrives there, the last one's wake-ups land on the global
	// heap, and the fault-injection hook fires with all shards quiescent.
	mon.global(t, func() {
		r.b1Seen[mon.CellID] = true
		r.barrier1.Await(t)
		mon.Coord.noteBarrier1Open(r)
	})
	mon.Tracer.End(t.Now(), b1Span, "recovery:barrier1", 0)

	b2Span := mon.Tracer.Begin(t.Now(), "recovery:barrier2")
	proc.Use(t, Phase2Base)
	if mon.dead {
		// Died between the barriers (the v2 campaign's favorite spot).
		return
	}
	var discarded, killed int64
	if mon.Hooks.Phase2 != nil {
		discarded = int64(mon.Hooks.Phase2(t, verdict))
	}
	if mon.Hooks.KillDependents != nil {
		killed = int64(mon.Hooks.KillDependents(verdict))
	}
	mon.global(t, func() {
		r.b2Seen[mon.CellID] = true
		r.barrier2.Await(t)
	})
	mon.Tracer.End(t.Now(), b2Span, "recovery:barrier2", discarded+killed)
	if mon.dead {
		return
	}

	resumeSpan := mon.Tracer.Begin(t.Now(), "recovery:resume")
	if mon.Hooks.Finish != nil {
		mon.Hooks.Finish()
	}
	if mon.Hooks.ResumeUser != nil {
		mon.Hooks.ResumeUser()
	}
	mon.global(t, func() { mon.Coord.noteRecoveryDone(r, mon.CellID, t.Now()) })
	mon.Tracer.End(t.Now(), resumeSpan, "recovery:resume", 0)

	// The round coordinator (the recovery master — lowest live member,
	// reassigned deterministically if it died mid-round) runs hardware
	// diagnostics on the failed nodes and, when enabled, reboots and
	// reintegrates them (§4.3).
	if r.coordinator == mon.CellID {
		for _, c := range sortedCells(verdict) {
			mon.runDiagnostics(t, c)
		}
	}
	mon.global(t, func() { mon.Coord.finishRound(r, mon.CellID) })
}

// runJoinRound executes one join round on a live member cell: validate
// the joiner's fresh image (probe or oracle — the joiner is untrusted
// until the commit, so even validation traffic rides the ordinary RPC
// boundary), then a double barrier symmetric to the death round — stale
// state about the old incarnation is dropped between the barriers — and
// finally the coordinator commits the joiner into the live set. Unlike a
// death round, user processes keep running throughout: the availability
// loop must not pause the survivors' workloads.
func (mon *Monitor) runJoinRound(t *sim.Task, r *round) {
	mon.Metrics.Counter("membership.joinrounds").Inc()

	validateSpan := mon.Tracer.Begin(t.Now(), "join:validate")
	admit := mon.Coord.agreeJoin(t, mon, r)
	var admitted int64
	if admit {
		admitted = 1
	}
	mon.Tracer.End(t.Now(), validateSpan, "join:validate", admitted)
	if mon.dead {
		return
	}
	if !admit {
		// The fresh image is unreachable (or died already): abort. The
		// requester was resolved by the verdict; the members just drain.
		mon.global(t, func() { mon.Coord.finishRound(r, mon.CellID) })
		return
	}

	proc := mon.proc()
	b1Span := mon.Tracer.Begin(t.Now(), "join:barrier1")
	proc.Use(t, JoinPhase1Base)
	if mon.dead {
		// Same rule as the death round: a member that died during the
		// phase must not arrive at a barrier that no longer counts it.
		return
	}
	mon.global(t, func() {
		r.b1Seen[mon.CellID] = true
		r.barrier1.Await(t)
		mon.Coord.noteJoinBarrier1Open(r)
	})
	mon.Tracer.End(t.Now(), b1Span, "join:barrier1", 0)

	b2Span := mon.Tracer.Begin(t.Now(), "join:warm")
	proc.Use(t, JoinPhase2Base)
	if mon.dead {
		return
	}
	// Drop stale state about the old incarnation before the fresh one
	// becomes visible. The hook touches machine-global page state, so it
	// runs in the global section with the barrier.
	mon.global(t, func() {
		if mon.Hooks.Reintegrate != nil {
			mon.Hooks.Reintegrate(r.suspect)
		}
		r.b2Seen[mon.CellID] = true
		r.barrier2.Await(t)
	})
	mon.Tracer.End(t.Now(), b2Span, "join:warm", 0)
	if mon.dead {
		return
	}

	if r.coordinator == mon.CellID {
		mon.global(t, func() { mon.Coord.commitJoin(r, t.Now(), mon.Tracer) })
	}
	mon.global(t, func() { mon.Coord.finishRound(r, mon.CellID) })
}

// AnnounceJoin broadcasts the microbooted cell's join request to every
// live member and waits for the casts to land. It runs on the joiner's own
// shard (the reboot controller spawns it there); the request travels the
// ordinary RPC path — checksummed on the wire, sanity-checked at the
// receiver — because the joiner is untrusted until the round commits.
func (mon *Monitor) AnnounceJoin(t *sim.Task, seq int) {
	span := mon.Tracer.Begin(t.Now(), "join:announce")
	msg := &joinMsg{Joiner: mon.CellID, Sequence: seq}
	var peers []int
	mon.global(t, func() { peers = mon.Coord.liveSet() })
	join := sim.NewBarrier(len(peers) + 1)
	for _, c := range peers {
		c := c
		mon.eng().Go(fmt.Sprintf("cell%d.join%d", mon.CellID, c), func(t *sim.Task) {
			//hive:lint-ignore errdrop join announce is best-effort: a member that cannot be reached is itself failing and will leave the round via CellDiedMidRound
			mon.EP.Call(t, mon.proc(), c, ProcJoin, msg,
				rpc.CallOpts{DataBytes: 64, NoHint: true})
			join.Await(t)
		})
	}
	join.Await(t)
	mon.Tracer.End(t.Now(), span, "join:announce", int64(len(peers)))
}

// runDiagnostics checks a failed cell's nodes and reintegrates when
// AutoReintegrate is set and the hardware passes.
func (mon *Monitor) runDiagnostics(t *sim.Task, cell int) {
	mon.proc().Use(t, DiagnosticsCost)
	mon.Metrics.Counter("membership.diagnostics").Inc()
	if !mon.Coord.AutoReintegrate {
		return
	}
	healthy := true
	for _, n := range mon.Coord.nodesOf(cell) {
		if mon.Coord.BrokenHardware[n] {
			healthy = false
		}
	}
	if !healthy {
		return
	}
	// Node repair, the live-set update, and the peer notifications all
	// touch other cells' state: one global section covers the lot.
	mon.global(t, func() {
		for _, n := range mon.Coord.nodesOf(cell) {
			mon.M.Nodes[n].Repair()
		}
		mon.Coord.reintegrate(cell)
		// Notify peers in cell order: the hooks touch live kernel state, so
		// map iteration order must not leak into the simulation.
		for _, id := range sortedMonitorIDs(mon.Coord.monitors) {
			peer := mon.Coord.monitors[id]
			if peer.Hooks.Reintegrate != nil && !peer.dead && peer.CellID != cell {
				peer.Hooks.Reintegrate(cell)
			}
		}
	})
	mon.Metrics.Counter("membership.reintegrations").Inc()
}

// registerServices installs the alert and ping services.
func (mon *Monitor) registerServices() {
	mon.EP.Register(ProcAlert, "membership.alert",
		func(req *rpc.Request) (any, sim.Time, bool, error) {
			msg, ok := req.Args.(*alertMsg)
			if !ok || msg.Accuser != req.From || msg.Suspect == mon.CellID {
				// A cell alerting about *us* gets no cooperation;
				// sanity checks defend against forged alerts.
				return nil, 0, true, fmt.Errorf("membership: bad alert")
			}
			// Receiving an alert suppresses this cell's own broadcast for
			// the same suspect: the sender's cast already reached every
			// live cell, so a second cast would only add another N-message
			// wave (N independent accusers × N recipients grows O(N²) with
			// the cell count; the flag keeps the total O(N)). The queued
			// copy below still guarantees this cell joins the round.
			mon.alerting[msg.Suspect] = true
			mon.alerts.Push(msg)
			return nil, 20 * sim.Microsecond, true, nil
		}, nil)

	mon.EP.Register(ProcPing, "membership.ping",
		func(req *rpc.Request) (any, sim.Time, bool, error) {
			return "pong", 0, true, nil
		}, nil)

	mon.EP.Register(ProcJoin, "membership.join",
		func(req *rpc.Request) (any, sim.Time, bool, error) {
			msg, ok := req.Args.(*joinMsg)
			if !ok || msg.Joiner != req.From || msg.Joiner == mon.CellID {
				// A join announcement must come from the joiner itself;
				// anything else is a forged or corrupt request. The live
				// check happens later, inside ensureJoinRound's global
				// section — coordinator state is not readable here.
				return nil, 0, true, fmt.Errorf("membership: bad join request")
			}
			mon.alerts.Push(msg)
			return nil, 20 * sim.Microsecond, true, nil
		}, nil)
}

// probe tests a suspect's liveness for the voting protocol: two pings, dead
// only if both fail.
func (mon *Monitor) probe(t *sim.Task, suspect int) bool {
	for attempt := 0; attempt < 2; attempt++ {
		_, err := mon.EP.Call(t, mon.proc(), suspect, ProcPing, nil,
			rpc.CallOpts{Timeout: ProbeTimeout, NoHint: true})
		if err == nil {
			return true // alive
		}
	}
	return false
}

// sortedCells returns keys ascending (determinism helper).
func sortedCells(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// sortedMonitorIDs returns the registered cell ids ascending.
func sortedMonitorIDs(m map[int]*Monitor) []int {
	out := make([]int, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}
