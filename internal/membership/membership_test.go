package membership

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/rpc"
	"repro/internal/sim"
)

// fixture builds N single-node cells with monitors wired to a coordinator
// and simple in-test recovery hooks.
type fixture struct {
	e     *sim.Engine
	m     *machine.Machine
	coord *Coordinator
	mons  []*Monitor
	eps   []*rpc.Endpoint

	suspended []int
	resumed   []int
	phase1s   []int
	phase2s   []int
	finishes  []int
	panics    []int
}

func newFixture(t *testing.T, cells int, mode AgreementMode) *fixture {
	t.Helper()
	e := sim.NewEngine(99)
	cfg := machine.DefaultConfig()
	cfg.Nodes = cells
	cfg.MemPerNodeMB = 1
	m := machine.New(e, cfg)
	nodesByCell := make([][]int, cells)
	for i := range nodesByCell {
		nodesByCell[i] = []int{i}
	}
	f := &fixture{e: e, m: m, coord: NewCoordinator(cells, nodesByCell, mode)}
	f.coord.BrokenHardware = map[int]bool{}
	for c := 0; c < cells; c++ {
		ep := rpc.NewEndpoint(m, c, []*machine.Processor{m.Procs[c]}, 2)
		f.eps = append(f.eps, ep)
	}
	rpc.Connect(f.eps...)
	for c := 0; c < cells; c++ {
		c := c
		mon := NewMonitor(m, f.eps[c], f.coord, c, []int{c})
		mon.Hooks = Hooks{
			SuspendUser: func() { f.suspended = append(f.suspended, c) },
			ResumeUser:  func() { f.resumed = append(f.resumed, c) },
			Phase1:      func(t *sim.Task) { f.phase1s = append(f.phase1s, c) },
			Phase2: func(t *sim.Task, failed map[int]bool) int {
				f.phase2s = append(f.phase2s, c)
				return 0
			},
			Finish: func() { f.finishes = append(f.finishes, c) },
			Panic: func(reason string) {
				f.panics = append(f.panics, c)
				f.mons[c].Stop()
				f.coord.CellDiedMidRound(c)
			},
		}
		f.mons = append(f.mons, mon)
	}
	return f
}

func (f *fixture) start() {
	for _, mon := range f.mons {
		mon.Start()
	}
}

// fail fail-stops a cell's node and tells the oracle.
func (f *fixture) fail(c int) {
	f.m.Nodes[c].FailStop()
}

func (f *fixture) runUntil(cond func() bool, d sim.Time) bool {
	deadline := f.e.Now() + d
	for f.e.Now() < deadline {
		if cond() {
			return true
		}
		f.e.Run(f.e.Now() + sim.Millisecond)
	}
	return cond()
}

func TestClockMonitorDetectsHaltedNeighbor(t *testing.T) {
	f := newFixture(t, 3, Oracle)
	failed := map[int]bool{}
	f.coord.OracleFailed = func(c int) bool { return failed[c] }
	f.start()
	f.e.Run(50 * sim.Millisecond)
	if f.coord.RoundsRun != 0 {
		t.Fatalf("false alarms: %d", f.coord.RoundsRun)
	}
	failed[1] = true
	f.fail(1)
	if !f.runUntil(func() bool { return f.coord.LiveCount() == 2 }, sim.Second) {
		t.Fatal("failure never confirmed")
	}
	f.e.Run(f.e.Now() + 300*sim.Millisecond) // let recovery phases finish
	// Every survivor suspended, ran both phases, finished, resumed.
	if len(f.phase1s) != 2 || len(f.phase2s) != 2 || len(f.finishes) != 2 {
		t.Fatalf("phases = %v %v %v", f.phase1s, f.phase2s, f.finishes)
	}
	if len(f.suspended) < 2 || len(f.resumed) < 2 {
		t.Fatalf("suspend/resume = %v/%v", f.suspended, f.resumed)
	}
}

func TestNeighborRingRetargets(t *testing.T) {
	f := newFixture(t, 4, Oracle)
	if nb := f.coord.neighborOf(3); nb != 0 {
		t.Fatalf("neighbor of 3 = %d", nb)
	}
	f.coord.MarkDead(0)
	if nb := f.coord.neighborOf(3); nb != 1 {
		t.Fatalf("neighbor of 3 after death of 0 = %d", nb)
	}
	if f.coord.masterOf() != 1 {
		t.Fatalf("master = %d", f.coord.masterOf())
	}
}

func TestOracleRejectsFalseAlarm(t *testing.T) {
	f := newFixture(t, 3, Oracle)
	f.coord.OracleFailed = func(c int) bool { return false }
	f.start()
	f.e.Run(30 * sim.Millisecond)
	f.mons[0].Hint(2, "spurious")
	f.e.Run(f.e.Now() + 300*sim.Millisecond)
	if f.coord.LiveCount() != 3 {
		t.Fatalf("live = %d", f.coord.LiveCount())
	}
	if f.coord.FalseAlarms != 1 {
		t.Fatalf("false alarms = %d", f.coord.FalseAlarms)
	}
	if len(f.phase1s) != 0 {
		t.Fatal("recovery phases ran on a false alarm")
	}
	// The suspect is never alerted, so only the two accuser-side members
	// suspend and resume.
	if len(f.resumed) < 2 {
		t.Fatalf("user processes not resumed: %v", f.resumed)
	}
}

func TestVoteConfirmsAndRejects(t *testing.T) {
	f := newFixture(t, 4, Vote)
	f.start()
	f.e.Run(30 * sim.Millisecond)
	// False accusation first.
	f.mons[0].Hint(2, "bogus")
	f.e.Run(f.e.Now() + 300*sim.Millisecond)
	if f.coord.LiveCount() != 4 || f.coord.FalseAlarms != 1 {
		t.Fatalf("live=%d false=%d", f.coord.LiveCount(), f.coord.FalseAlarms)
	}
	// Then a real failure.
	f.fail(3)
	if !f.runUntil(func() bool { return f.coord.LiveCount() == 3 }, sim.Second) {
		t.Fatal("real failure not confirmed by vote")
	}
}

func TestCorruptAccuserBranded(t *testing.T) {
	f := newFixture(t, 4, Vote)
	f.start()
	f.e.Run(30 * sim.Millisecond)
	f.mons[1].Hint(3, "lie #1")
	f.e.Run(f.e.Now() + 300*sim.Millisecond)
	f.mons[1].Hint(3, "lie #2")
	if !f.runUntil(func() bool { return len(f.panics) == 1 && f.panics[0] == 1 }, 2*sim.Second) {
		t.Fatalf("accuser not branded: panics=%v", f.panics)
	}
	if !f.runUntil(func() bool { return f.coord.LiveCount() == 3 }, 2*sim.Second) {
		t.Fatalf("live = %d", f.coord.LiveCount())
	}
	if !f.coord.isLive(3) {
		t.Fatal("innocent suspect was removed")
	}
}

func TestAlertSanityChecks(t *testing.T) {
	f := newFixture(t, 3, Oracle)
	f.start()
	done := false
	f.e.Go("forger", func(tk *sim.Task) {
		defer func() { done = true }()
		// A forged alert whose accuser field doesn't match the sender
		// is refused by the handler's sanity check.
		_, err := f.eps[0].Call(tk, f.m.Procs[0], 1, ProcAlert,
			&alertMsg{Suspect: 2, Accuser: 99, Sequence: 1}, rpc.CallOpts{NoHint: true})
		if err == nil {
			t.Error("forged alert accepted")
		}
		// An alert accusing the receiver itself is refused.
		_, err = f.eps[0].Call(tk, f.m.Procs[0], 1, ProcAlert,
			&alertMsg{Suspect: 1, Accuser: 0, Sequence: 2}, rpc.CallOpts{NoHint: true})
		if err == nil {
			t.Error("self-accusation accepted")
		}
	})
	f.runUntil(func() bool { return done }, sim.Second)
	f.e.Run(f.e.Now() + 100*sim.Millisecond)
	if f.coord.RoundsRun != 0 {
		t.Fatalf("forged alerts started %d rounds", f.coord.RoundsRun)
	}
}

func TestDetectionLatencyBoundedByClockCheck(t *testing.T) {
	f := newFixture(t, 4, Oracle)
	failed := map[int]bool{}
	f.coord.OracleFailed = func(c int) bool { return failed[c] }
	f.start()
	f.e.Run(35 * sim.Millisecond)
	at := f.e.Now()
	failed[2] = true
	f.fail(2)
	if !f.runUntil(func() bool { return f.coord.LiveCount() == 3 }, sim.Second) {
		t.Fatal("not confirmed")
	}
	d := f.coord.LastDetectAt - at
	// One clock-check period (2 ticks = 20 ms) plus agreement entry.
	if d <= 0 || d > 40*sim.Millisecond {
		t.Fatalf("detection latency = %v", d)
	}
}

func TestRecoveryMasterRunsDiagnosticsAndReintegrates(t *testing.T) {
	f := newFixture(t, 3, Oracle)
	failed := map[int]bool{}
	f.coord.OracleFailed = func(c int) bool { return failed[c] }
	f.coord.AutoReintegrate = true
	reintegrated := []int{}
	for c := range f.mons {
		c := c
		f.mons[c].Hooks.Reintegrate = func(cell int) {
			reintegrated = append(reintegrated, cell*10+c)
		}
	}
	f.start()
	f.e.Run(30 * sim.Millisecond)
	failed[1] = true
	f.fail(1)
	if !f.runUntil(func() bool { return f.coord.LiveCount() == 2 }, sim.Second) {
		t.Fatal("not confirmed")
	}
	failed[1] = false // hardware repaired before diagnostics conclude
	if !f.runUntil(func() bool { return f.coord.LiveCount() == 3 }, 2*sim.Second) {
		t.Fatal("never reintegrated")
	}
	if f.m.Nodes[1].Failed() {
		t.Fatal("node not repaired")
	}
	if len(reintegrated) == 0 {
		t.Fatal("peers not told about reintegration")
	}
}

func TestBrokenHardwareBlocksReintegration(t *testing.T) {
	f := newFixture(t, 3, Oracle)
	failed := map[int]bool{}
	f.coord.OracleFailed = func(c int) bool { return failed[c] }
	f.coord.AutoReintegrate = true
	f.coord.BrokenHardware[1] = true
	f.start()
	f.e.Run(30 * sim.Millisecond)
	failed[1] = true
	f.fail(1)
	if !f.runUntil(func() bool { return f.coord.LiveCount() == 2 }, sim.Second) {
		t.Fatal("not confirmed")
	}
	f.e.Run(f.e.Now() + 500*sim.Millisecond)
	if f.coord.LiveCount() != 2 {
		t.Fatal("broken hardware was reintegrated")
	}
}

func TestTwoSequentialFailures(t *testing.T) {
	f := newFixture(t, 4, Oracle)
	failed := map[int]bool{}
	f.coord.OracleFailed = func(c int) bool { return failed[c] }
	f.start()
	f.e.Run(30 * sim.Millisecond)
	failed[1] = true
	f.fail(1)
	if !f.runUntil(func() bool { return f.coord.LiveCount() == 3 }, sim.Second) {
		t.Fatal("first failure not confirmed")
	}
	f.e.Run(f.e.Now() + 200*sim.Millisecond) // first recovery completes
	failed[3] = true
	f.fail(3)
	f.coord.CellDiedMidRound(3) // the cell layer does this on hardware failure
	if !f.runUntil(func() bool { return f.coord.LiveCount() == 2 }, sim.Second) {
		t.Fatal("second failure not confirmed")
	}
	if f.coord.isLive(1) || f.coord.isLive(3) {
		t.Fatal("dead cells still live")
	}
	if !f.coord.isLive(0) || !f.coord.isLive(2) {
		t.Fatal("survivors lost")
	}
}

func TestScenarioDedup(t *testing.T) {
	// Multiple hints about the same suspect during one round fold into a
	// single recovery round.
	f := newFixture(t, 4, Oracle)
	failed := map[int]bool{}
	f.coord.OracleFailed = func(c int) bool { return failed[c] }
	f.start()
	f.e.Run(30 * sim.Millisecond)
	failed[2] = true
	f.fail(2)
	f.mons[0].Hint(2, "a")
	f.mons[1].Hint(2, "b")
	f.mons[3].Hint(2, "c")
	if !f.runUntil(func() bool { return f.coord.LiveCount() == 3 }, sim.Second) {
		t.Fatal("not confirmed")
	}
	f.e.Run(f.e.Now() + 200*sim.Millisecond)
	if len(f.phase1s) != 3 {
		t.Fatalf("phase1 ran %d times, want 3 (once per survivor)", len(f.phase1s))
	}
}
