// multifault_test.go — recovery under further faults: the v2 campaign's
// membership-layer guarantees. A second member dying mid-round shrinks the
// barriers instead of stranding the survivors; the round coordinator dying
// between its barriers restarts the round under the next live cell; an
// alert for a second suspect arriving while a round is busy is requeued,
// not dropped.
package membership

import (
	"testing"

	"repro/internal/sim"
)

// failMidRound fail-stops cell c the way the cell layer does on hardware
// failure: the node stops, the monitor dies, and the coordinator withdraws
// the member from any active round.
func (f *fixture) failMidRound(c int) {
	f.fail(c)
	f.mons[c].Stop()
	f.coord.CellDiedMidRound(c)
}

func TestSecondDeathMidRoundConverges(t *testing.T) {
	f := newFixture(t, 4, Oracle)
	failed := map[int]bool{}
	f.coord.OracleFailed = func(c int) bool { return failed[c] }
	var second int
	armed := false
	f.coord.OnBarrier1Open = func(suspect, coordinator int) {
		if armed || suspect != 1 {
			return
		}
		armed = true
		// Kill another round member while every survivor is between the
		// barriers.
		second = 3
		if coordinator == 3 {
			second = 2
		}
		failed[second] = true
		f.e.After(sim.Millisecond, func() { f.failMidRound(second) })
	}
	f.start()
	f.e.Run(30 * sim.Millisecond)
	failed[1] = true
	f.fail(1)
	if !f.runUntil(func() bool { return f.coord.LiveCount() == 2 && f.coord.RecoveryIdle() }, 3*sim.Second) {
		t.Fatalf("round never converged after mid-round death: live=%d idle=%v",
			f.coord.LiveCount(), f.coord.RecoveryIdle())
	}
	if !armed {
		t.Fatal("second fault never armed")
	}
	if f.coord.isLive(1) || f.coord.isLive(second) {
		t.Fatal("dead cells still in the live set")
	}
	// Both survivors resumed their user processes — nobody is stranded
	// frozen at a barrier that will never open.
	resumes := 0
	for _, c := range f.resumed {
		if c != 1 && c != second {
			resumes++
		}
	}
	if resumes < 2 {
		t.Fatalf("survivors not resumed: resumed=%v", f.resumed)
	}
}

func TestCoordinatorDeathMidRoundRestartsRound(t *testing.T) {
	f := newFixture(t, 4, Oracle)
	failed := map[int]bool{}
	f.coord.OracleFailed = func(c int) bool { return failed[c] }
	var deadCoord int
	armed := false
	f.coord.OnBarrier1Open = func(suspect, coordinator int) {
		if armed || suspect != 2 {
			return
		}
		armed = true
		deadCoord = coordinator
		failed[coordinator] = true
		f.e.After(sim.Millisecond, func() { f.failMidRound(coordinator) })
	}
	f.start()
	f.e.Run(30 * sim.Millisecond)
	failed[2] = true
	f.fail(2)
	if !f.runUntil(func() bool { return f.coord.LiveCount() == 2 && f.coord.RecoveryIdle() }, 3*sim.Second) {
		t.Fatalf("round never converged after coordinator death: live=%d", f.coord.LiveCount())
	}
	if !armed {
		t.Fatal("coordinator fault never armed")
	}
	if f.coord.RoundRestarts == 0 {
		t.Fatal("coordinator death did not restart the round")
	}
	if f.coord.isLive(2) || f.coord.isLive(deadCoord) {
		t.Fatal("dead cells still live")
	}
	// The round must have finished under a different, live coordinator.
	for _, c := range []int{0, 1, 3} {
		if c != deadCoord && !f.coord.isLive(c) {
			t.Fatalf("survivor %d lost", c)
		}
	}
}

func TestSixteenCellDoubleFaultContained(t *testing.T) {
	// The mid-round second death at the scaling suite's cell count: the
	// barriers shrink from 15 members to 14, and the fault must stay
	// contained — exactly the two faulted cells leave the live set, and
	// every one of the 14 survivors resumes its user processes.
	const cells = 16
	f := newFixture(t, cells, Oracle)
	failed := map[int]bool{}
	f.coord.OracleFailed = func(c int) bool { return failed[c] }
	var second int
	armed := false
	f.coord.OnBarrier1Open = func(suspect, coordinator int) {
		if armed || suspect != 1 {
			return
		}
		armed = true
		second = 9
		if coordinator == 9 {
			second = 10
		}
		failed[second] = true
		f.e.After(sim.Millisecond, func() { f.failMidRound(second) })
	}
	f.start()
	f.e.Run(30 * sim.Millisecond)
	failed[1] = true
	f.fail(1)
	if !f.runUntil(func() bool { return f.coord.LiveCount() == cells-2 && f.coord.RecoveryIdle() }, 5*sim.Second) {
		t.Fatalf("16-cell double fault never converged: live=%d idle=%v",
			f.coord.LiveCount(), f.coord.RecoveryIdle())
	}
	if !armed {
		t.Fatal("second fault never armed")
	}
	for c := 0; c < cells; c++ {
		if c == 1 || c == second {
			if f.coord.isLive(c) {
				t.Fatalf("dead cell %d still in the live set", c)
			}
			continue
		}
		if !f.coord.isLive(c) {
			t.Fatalf("fault not contained: survivor %d lost", c)
		}
	}
	// Recovery converged without thrashing: the second death shrinks the
	// running round (or at worst restarts it once); it must not ripple
	// into a restart per member.
	if f.coord.RoundRestarts > 2 {
		t.Fatalf("round restarts = %d, want <= 2", f.coord.RoundRestarts)
	}
	resumes := 0
	for _, c := range f.resumed {
		if c != 1 && c != second {
			resumes++
		}
	}
	if resumes < cells-2 {
		t.Fatalf("survivors not all resumed: %d of %d", resumes, cells-2)
	}
}

func TestSixteenCellCoordinatorDeathContained(t *testing.T) {
	// Coordinator death between the barriers at 16 cells: the 14 survivors
	// must restart the round under the next live cell, and the restart
	// count stays bounded — one death, at most a couple of restarts, never
	// a cascade across the membership.
	const cells = 16
	f := newFixture(t, cells, Oracle)
	failed := map[int]bool{}
	f.coord.OracleFailed = func(c int) bool { return failed[c] }
	var deadCoord int
	armed := false
	f.coord.OnBarrier1Open = func(suspect, coordinator int) {
		if armed || suspect != 5 {
			return
		}
		armed = true
		deadCoord = coordinator
		failed[coordinator] = true
		f.e.After(sim.Millisecond, func() { f.failMidRound(coordinator) })
	}
	f.start()
	f.e.Run(30 * sim.Millisecond)
	failed[5] = true
	f.fail(5)
	if !f.runUntil(func() bool { return f.coord.LiveCount() == cells-2 && f.coord.RecoveryIdle() }, 5*sim.Second) {
		t.Fatalf("16-cell coordinator death never converged: live=%d", f.coord.LiveCount())
	}
	if !armed {
		t.Fatal("coordinator fault never armed")
	}
	if f.coord.RoundRestarts == 0 {
		t.Fatal("coordinator death did not restart the round")
	}
	if f.coord.RoundRestarts > 2 {
		t.Fatalf("round restarts = %d, want <= 2 (one per coordinator death)", f.coord.RoundRestarts)
	}
	for c := 0; c < cells; c++ {
		if c == 5 || c == deadCoord {
			if f.coord.isLive(c) {
				t.Fatalf("dead cell %d still live", c)
			}
			continue
		}
		if !f.coord.isLive(c) {
			t.Fatalf("fault not contained: survivor %d lost", c)
		}
	}
}

func TestBusyRoundRequeuesAlertForSecondSuspect(t *testing.T) {
	// Two near-simultaneous independent failures: the alert for the second
	// suspect arrives while the coordinator is serving the first suspect's
	// round. It must be requeued and served after the first round drains —
	// the accuser will not re-broadcast, so dropping it would hang the
	// second recovery forever.
	f := newFixture(t, 4, Oracle)
	failed := map[int]bool{}
	f.coord.OracleFailed = func(c int) bool { return failed[c] }
	f.start()
	f.e.Run(30 * sim.Millisecond)
	failed[1] = true
	failed[2] = true
	f.failMidRound(1)
	f.failMidRound(2)
	if !f.runUntil(func() bool { return f.coord.LiveCount() == 2 && f.coord.RecoveryIdle() }, 3*sim.Second) {
		t.Fatalf("double failure never fully recovered: live=%d rounds=%d",
			f.coord.LiveCount(), f.coord.RoundsRun)
	}
	if f.coord.RoundsRun < 2 {
		t.Fatalf("rounds run = %d, want one per suspect", f.coord.RoundsRun)
	}
	if f.coord.isLive(1) || f.coord.isLive(2) {
		t.Fatal("dead cells still live")
	}
	if !f.coord.isLive(0) || !f.coord.isLive(3) {
		t.Fatal("survivors lost")
	}
}
