// Package hive is a Go reproduction of "Hive: Fault Containment for
// Shared-Memory Multiprocessors" (Chapin, Rosenblum, Devine, Lahiri,
// Teodosiu, Gupta — SOSP 1995).
//
// Hive is an operating system structured as an internal distributed system
// of independent kernels called cells. Because a real supervisor kernel
// cannot live inside a Go runtime, this package drives a deterministic
// discrete-event simulation of the Stanford FLASH machine (firewall
// write-permission hardware, SIPS messages, the memory fault model) and
// runs the full multicellular kernel on top: per-cell virtual memory with
// logical- and physical-level memory sharing, a distributed file system
// with failure generation numbers, distributed copy-on-write trees read
// through the careful reference protocol, intercell RPC, failure detection
// with distributed agreement, double-barrier recovery with preemptive
// discard, and the Wax user-level policy process.
//
// Quick start:
//
//	h := hive.Boot(hive.DefaultConfig())       // 4 cells on 4 nodes
//	res := hive.RunPmake(h, hive.DefaultPmake(), 30*hive.Second)
//	fmt.Println(res.Elapsed)                    // virtual seconds
//	h.Cells[1].FailHardware()                   // inject a fail-stop fault
//	h.Run(h.Now() + hive.Second)                // survivors detect & recover
//
// Every run is deterministic for a given Config.Seed. See DESIGN.md for
// the system inventory and EXPERIMENTS.md for the paper-vs-measured
// results of every table the evaluation reproduces.
package hive

import (
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/fs"
	"repro/internal/membership"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Re-exported core types. The internal packages remain the implementation;
// these aliases are the supported public surface.
type (
	// Config describes a Hive boot: machine shape, cell count,
	// agreement mode, file system mounts, seed.
	Config = core.Config
	// Hive is a booted system: the machine, the coordinator, and the
	// cells.
	Hive = core.Hive
	// Cell is one independent kernel.
	Cell = core.Cell
	// Mount places a file-system subtree on a data-home cell.
	Mount = fs.Mount
	// Time is virtual time in nanoseconds.
	Time = sim.Time

	// PmakeConfig, OceanConfig, and RaytraceConfig parameterize the
	// paper's three evaluation workloads (Table 7.1).
	PmakeConfig    = workload.PmakeConfig
	OceanConfig    = workload.OceanConfig
	RaytraceConfig = workload.RaytraceConfig
	// WorkloadResult is a workload execution's outcome.
	WorkloadResult = workload.Result

	// Scenario names a §7.4 fault-injection scenario.
	Scenario = faultinject.Scenario
	// TrialResult is one fault-injection trial's outcome.
	TrialResult = faultinject.TrialResult
)

// Time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// Agreement modes.
const (
	// Oracle confirms failures from ground truth, as in the paper's
	// experiments.
	Oracle = membership.Oracle
	// Vote runs the real probe-and-majority agreement protocol.
	Vote = membership.Vote
)

// Fault-injection scenarios (Table 7.4).
const (
	NodeFailProcCreate = faultinject.NodeFailProcCreate
	NodeFailCOWSearch  = faultinject.NodeFailCOWSearch
	NodeFailRandom     = faultinject.NodeFailRandom
	CorruptAddrMap     = faultinject.CorruptAddrMap
	CorruptCOWTree     = faultinject.CorruptCOWTree
)

// DefaultConfig returns the paper's evaluation machine: four 200 MHz
// processors, 32 MB per node, four cells, /tmp homed on the last cell.
func DefaultConfig() Config { return core.DefaultConfig() }

// Boot builds and starts a Hive.
func Boot(cfg Config) *Hive { return core.Boot(cfg) }

// MaxCells is the largest supported cell count (64): the FLASH firewall
// tracks write permission as a 64-bit processor vector per page, so the
// containment hardware can distinguish at most 64 single-node cells.
const MaxCells = core.MaxCells

// BootCells boots a machine partitioned into any supported cell count
// (1 up to MaxCells) with the standard mounts. Counts dividing the paper's
// 4-node evaluation machine (1, 2, 4) boot exactly that machine; larger
// counts scale to one node per cell. Panics on unsupported counts — use
// ValidateCells to check first.
func BootCells(cells int) *Hive { return workload.BootHive(cells) }

// ValidateCells reports whether BootCells would accept the count: nil for
// 1..MaxCells, an error describing the violated constraint otherwise.
func ValidateCells(cells int) error {
	nodes := cells
	if cells >= 1 && cells <= 4 && 4%cells == 0 {
		nodes = 4 // counts dividing the evaluation machine keep its 4 nodes
	}
	return core.ValidateCells(cells, nodes)
}

// BootIRIX boots the IRIX 5.2 baseline: the same kernel code as a single
// cell with the Hive protection hardware off.
func BootIRIX() *Hive { return workload.BootIRIX() }

// DefaultPmake returns the calibrated parallel-make workload (11 files of
// GnuChess, 4 at a time; ≈5.77 s on IRIX).
func DefaultPmake() PmakeConfig { return workload.DefaultPmake() }

// DefaultOcean returns the calibrated SPLASH-2 ocean workload (130×130
// grid; ≈6.07 s on IRIX).
func DefaultOcean() OceanConfig { return workload.DefaultOcean() }

// DefaultRaytrace returns the calibrated SPLASH-2 raytrace workload (a
// teapot; ≈4.35 s on IRIX).
func DefaultRaytrace() RaytraceConfig { return workload.DefaultRaytrace() }

// RunPmake executes the parallel make, blocking (in virtual time) until it
// completes or maxTime passes.
func RunPmake(h *Hive, cfg PmakeConfig, maxTime Time) *WorkloadResult {
	return workload.RunPmake(h, cfg, maxTime)
}

// RunOcean executes the ocean simulation.
func RunOcean(h *Hive, cfg OceanConfig, maxTime Time) *WorkloadResult {
	return workload.RunOcean(h, cfg, maxTime)
}

// RunRaytrace executes the raytrace render.
func RunRaytrace(h *Hive, cfg RaytraceConfig, maxTime Time) *WorkloadResult {
	return workload.RunRaytrace(h, cfg, maxTime)
}

// VerifyOutputs re-reads a workload's output files and reports data
// integrity violations (corrupt or silently wrong content). Missing files
// and EIO are availability losses, not violations.
func VerifyOutputs(h *Hive, res *WorkloadResult) (bad int, report []string) {
	return workload.VerifyOutputs(h, res)
}

// RunTrial executes one §7.4 fault-injection trial from a fresh boot.
func RunTrial(s Scenario, trial int) *TrialResult {
	return faultinject.RunTrial(s, trial)
}
