# Build/test entry points. Everything is pure Go, standard library only.

GO ?= go

.PHONY: all build test lint check race bench bench-engine bench-report clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs hivelint, the in-tree determinism & layering suite
# (internal/lint). The same suite is also gated inside `go test ./...`
# via the internal/lint self-test.
lint:
	$(GO) run ./cmd/hivelint

# check is the tier-1 gate: build, vet, hivelint, full test suite, and
# the race detector over the packages that actually use OS-level
# concurrency (the parallel trial runner) plus the engine it drives.
check: build
	$(GO) vet ./...
	$(GO) run ./cmd/hivelint
	$(GO) test ./...
	$(GO) test -race ./internal/parallel/... ./internal/sim/...

# race runs the concurrency-sensitive packages under the race detector,
# including the cross-package determinism gates in internal/faultinject.
race:
	$(GO) test -race ./internal/parallel/... ./internal/sim/... ./internal/faultinject/...

# bench regenerates every paper table as benchmarks.
bench:
	$(GO) test -bench=. -benchmem .

# bench-engine tracks the simulator's own hot paths (events/sec, allocs).
bench-engine:
	$(GO) test -run xxx -bench 'BenchmarkEngine|BenchmarkEvent|BenchmarkPending|BenchmarkTask' -benchmem ./internal/sim/

# bench-report writes the machine-readable experiment report.
bench-report:
	$(GO) run ./cmd/hivebench -quick -json -o BENCH_hive.json

clean:
	rm -f BENCH_hive.json
