# Build/test entry points. Everything is pure Go, standard library only.

GO ?= go

.PHONY: all build test lint lint-report lint-examples check trace-check drill-smoke mort-check shard-identity reboot-identity frontend-identity frontend-smoke crashloop-soak surge-soak race bench bench-engine bench-report bench-gate clean

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint runs hivelint, the in-tree determinism, layering &
# fault-containment suite (internal/lint): seven single-package
# analyzers plus the four interprocedural ones (carefulref, rpctaint,
# errdrop, shardescape) built on the module-wide call graph and taint
# engine. Stale //hive:lint-ignore pragmas are diagnostics too. The
# -budget flag additionally fails the run if linting itself exceeds 30s
# of wall time: the suite must stay cheap enough to live inside the
# tier-1 gate. The same suite is also gated inside `go test ./...` via
# the internal/lint self-test.
lint:
	$(GO) run ./cmd/hivelint -budget 30s

# lint-report writes the machine-readable lint report; CI uploads it as
# a build artifact.
lint-report:
	$(GO) run ./cmd/hivelint -json -budget 30s > hivelint.json

# lint-examples lints the example programs package by package (they sit
# outside the module-wide default scope; the model-only analyzers exempt
# them, but globalrand and the pragma checks still apply). Nightly CI
# runs this.
lint-examples:
	for d in examples/*/; do $(GO) run ./cmd/hivelint "./$$d" || exit 1; done

# check is the tier-1 gate: build, vet, hivelint, full test suite, the
# race detector over the packages that actually use OS-level concurrency
# (the parallel trial runner) plus the engine it drives, and the
# observability byte-identity gate.
check: build
	$(GO) vet ./...
	$(GO) run ./cmd/hivelint -budget 30s
	$(GO) test ./...
	$(GO) test -race ./internal/parallel/... ./internal/sim/...
	$(MAKE) trace-check
	$(MAKE) mort-check
	$(MAKE) frontend-smoke

# frontend-smoke is the fast frontend gate inside `check`: one surge
# trial end to end (kill a cell mid-surge through the faultdrill CLI,
# exit nonzero unless contained with the loop closed) plus the targeted
# open-loop determinism tests with -count=1.
frontend-smoke:
	$(GO) run ./cmd/faultdrill -scenario 14 -trial 0
	$(GO) test -count=1 -run 'TestFrontendArrivalDeterminism|TestFrontendZipfTenantMix' ./internal/workload/

# trace-check is the observability gate: the Chrome trace export and the
# histogram-backed campaign rows must be byte-identical across -j1/-j4
# and across repeated same-seed runs, and the exporter's pairing rules
# must hold. Runs the targeted determinism + export tests with -count=1
# so a cached pass never masks a regression.
trace-check:
	$(GO) test -count=1 -run 'TestTraceAndMetricsDeterminism' ./internal/faultinject/
	$(GO) test -count=1 -run 'TestExportChromePairsSpans|TestSetMergeTotalOrder|TestSpanPropagationAcrossCells' ./internal/trace/

# drill-smoke is the fast end-to-end campaign gate: one trial of every
# scenario (paper rows and v2 extensions) through the faultdrill CLI,
# exiting nonzero on any containment failure.
drill-smoke:
	$(GO) run ./cmd/faultdrill -trials 1

# mort-check is the forensic cross-check gate: hivemort re-derives the
# containment verdict of every default-campaign trial purely from the
# structured trace (internal/forensic) and exits nonzero if any verdict
# disagrees with the fault-injection harness's live-state verdict.
mort-check:
	$(GO) run ./cmd/hivemort
	@echo "mort-check: trace-derived verdicts agree with the harness"

# shard-identity is the sharded-engine determinism gate: the quick fault
# campaign (JSON, wall-clock/config fields stripped), the seeded sweep
# witness hash, a full workload run, and its Chrome trace export must be
# byte-identical between -shards 1 (the serial reference) and -shards
# auto (one OS worker per cell).
SCRATCH := .shardcheck
shard-identity:
	mkdir -p $(SCRATCH)
	$(GO) run ./cmd/faultdrill -trials 1 -json -o $(SCRATCH)/drill_s1.json -shards 1
	$(GO) run ./cmd/faultdrill -trials 1 -json -o $(SCRATCH)/drill_sa.json -shards auto
	grep -vE '"(jobs|gomaxprocs|shards|total_wall_ms)"' $(SCRATCH)/drill_s1.json > $(SCRATCH)/drill_s1.norm
	grep -vE '"(jobs|gomaxprocs|shards|total_wall_ms)"' $(SCRATCH)/drill_sa.json > $(SCRATCH)/drill_sa.norm
	diff $(SCRATCH)/drill_s1.norm $(SCRATCH)/drill_sa.norm
	$(GO) run ./cmd/faultdrill -sweep -points 24 -shards 1 > $(SCRATCH)/sweep_s1.txt
	$(GO) run ./cmd/faultdrill -sweep -points 24 -shards auto > $(SCRATCH)/sweep_sa.txt
	diff $(SCRATCH)/sweep_s1.txt $(SCRATCH)/sweep_sa.txt
	$(GO) run ./cmd/hivesim -workload pmake -cells 4 -fail 1 -shards 1 -trace $(SCRATCH)/trace_s1.json | grep -v 'trace written to' > $(SCRATCH)/sim_s1.txt
	$(GO) run ./cmd/hivesim -workload pmake -cells 4 -fail 1 -shards auto -trace $(SCRATCH)/trace_sa.json | grep -v 'trace written to' > $(SCRATCH)/sim_sa.txt
	diff $(SCRATCH)/sim_s1.txt $(SCRATCH)/sim_sa.txt
	diff $(SCRATCH)/trace_s1.json $(SCRATCH)/trace_sa.json
	rm -rf $(SCRATCH)
	@echo "shard-identity: -shards 1 and -shards auto byte-identical"

# reboot-identity is the availability-loop determinism gate: the three
# reboot scenarios' aggregates (time-to-full-capacity, during-loop p99,
# containment) must be byte-identical across -j1/-j8 and between
# -shards 1 (the serial reference) and -shards auto. Wall-clock and
# worker-count fields are stripped before the diff, same as
# shard-identity.
RBSCRATCH := .rebootcheck
reboot-identity:
	mkdir -p $(RBSCRATCH)
	$(GO) run ./cmd/hivebench -only reboot -j 1 -json -o $(RBSCRATCH)/rb_j1.json
	$(GO) run ./cmd/hivebench -only reboot -j 8 -json -o $(RBSCRATCH)/rb_j8.json
	grep -vE '"(jobs|gomaxprocs|shards|wall_ms|total_wall_ms)"' $(RBSCRATCH)/rb_j1.json > $(RBSCRATCH)/rb_j1.norm
	grep -vE '"(jobs|gomaxprocs|shards|wall_ms|total_wall_ms)"' $(RBSCRATCH)/rb_j8.json > $(RBSCRATCH)/rb_j8.norm
	diff $(RBSCRATCH)/rb_j1.norm $(RBSCRATCH)/rb_j8.norm
	$(GO) run ./cmd/hivebench -only reboot -shards 1 -json -o $(RBSCRATCH)/rb_s1.json
	$(GO) run ./cmd/hivebench -only reboot -shards auto -json -o $(RBSCRATCH)/rb_sa.json
	grep -vE '"(jobs|gomaxprocs|shards|wall_ms|total_wall_ms)"' $(RBSCRATCH)/rb_s1.json > $(RBSCRATCH)/rb_s1.norm
	grep -vE '"(jobs|gomaxprocs|shards|wall_ms|total_wall_ms)"' $(RBSCRATCH)/rb_sa.json > $(RBSCRATCH)/rb_sa.norm
	diff $(RBSCRATCH)/rb_s1.norm $(RBSCRATCH)/rb_sa.norm
	rm -rf $(RBSCRATCH)
	@echo "reboot-identity: availability loop byte-identical across -j and -shards"

# frontend-identity is the open-loop frontend determinism gate: the
# throughput-vs-offered-load sweep and the surge-fault row (SLO
# quantiles, shed counts, availability windows) must be byte-identical
# across -j1/-j8 and between -shards 1 (the serial reference) and
# -shards auto. Wall-clock and worker-count fields are stripped before
# the diff, same as the other identity gates.
FESCRATCH := .frontendcheck
frontend-identity:
	mkdir -p $(FESCRATCH)
	$(GO) run ./cmd/hivebench -only frontend -j 1 -json -o $(FESCRATCH)/fe_j1.json
	$(GO) run ./cmd/hivebench -only frontend -j 8 -json -o $(FESCRATCH)/fe_j8.json
	grep -vE '"(jobs|gomaxprocs|shards|wall_ms|total_wall_ms)"|wall_jobs_per_s' $(FESCRATCH)/fe_j1.json > $(FESCRATCH)/fe_j1.norm
	grep -vE '"(jobs|gomaxprocs|shards|wall_ms|total_wall_ms)"|wall_jobs_per_s' $(FESCRATCH)/fe_j8.json > $(FESCRATCH)/fe_j8.norm
	diff $(FESCRATCH)/fe_j1.norm $(FESCRATCH)/fe_j8.norm
	$(GO) run ./cmd/hivebench -only frontend -shards 1 -json -o $(FESCRATCH)/fe_s1.json
	$(GO) run ./cmd/hivebench -only frontend -shards auto -json -o $(FESCRATCH)/fe_sa.json
	grep -vE '"(jobs|gomaxprocs|shards|wall_ms|total_wall_ms)"|wall_jobs_per_s' $(FESCRATCH)/fe_s1.json > $(FESCRATCH)/fe_s1.norm
	grep -vE '"(jobs|gomaxprocs|shards|wall_ms|total_wall_ms)"|wall_jobs_per_s' $(FESCRATCH)/fe_sa.json > $(FESCRATCH)/fe_sa.norm
	diff $(FESCRATCH)/fe_s1.norm $(FESCRATCH)/fe_sa.norm
	rm -rf $(FESCRATCH)
	@echo "frontend-identity: open-loop frontend byte-identical across -j and -shards"

# crashloop-soak is the nightly deep gate for the availability loop:
# many extra trials of the crash-loop (scenario 12) and rolling-reboot
# (scenario 13) scenarios beyond the default campaign counts — every
# trial index draws a fresh seed — exiting nonzero on any containment
# failure or unbounded rejoin loop.
crashloop-soak:
	$(GO) build -o .soak-faultdrill ./cmd/faultdrill
	for t in $$(seq 0 24); do ./.soak-faultdrill -scenario 12 -trial $$t || exit 1; done
	for t in $$(seq 0 11); do ./.soak-faultdrill -scenario 13 -trial $$t || exit 1; done
	rm -f .soak-faultdrill
	@echo "crashloop-soak: 25 crash-loop + 12 rolling-reboot trials, all contained"

# surge-soak is the nightly deep gate for the frontend under fault: many
# extra surge trials (scenario 14) beyond the default campaign count —
# every trial index draws a fresh seed, a fresh fault time inside the
# burst, and a fresh victim — exiting nonzero if any trial leaks the
# fault, fails to close the reboot loop, or reports an unbounded
# user-visible window.
surge-soak:
	$(GO) build -o .soak-faultdrill ./cmd/faultdrill
	for t in $$(seq 0 15); do ./.soak-faultdrill -scenario 14 -trial $$t || exit 1; done
	rm -f .soak-faultdrill
	@echo "surge-soak: 16 surge-fault trials, all contained with bounded windows"

# race runs the concurrency-sensitive packages under the race detector,
# including the cross-package determinism gates in internal/faultinject
# and the stack-level sharded-engine identity tests in internal/workload.
race:
	$(GO) test -race ./internal/parallel/... ./internal/sim/... ./internal/faultinject/...
	$(GO) test -race -run 'Sharded' ./internal/workload/

# bench regenerates every paper table as benchmarks.
bench:
	$(GO) test -bench=. -benchmem .

# bench-engine tracks the simulator's own hot paths (events/sec, allocs).
bench-engine:
	$(GO) test -run xxx -bench 'BenchmarkEngine|BenchmarkEvent|BenchmarkPending|BenchmarkTask' -benchmem ./internal/sim/

# bench-report writes the machine-readable experiment report.
# BENCH_hive.json is committed as the tracked baseline; rerun this target
# to refresh it after perf-relevant changes.
bench-report:
	$(GO) run ./cmd/hivebench -quick -json -o BENCH_hive.json

# bench-gate is the CI perf-regression gate: regenerate the quick report
# and fail if any deterministic metric drifts more than 5% from the
# committed BENCH_hive.json. Wall-clock timings are ignored. After an
# intentional perf change, refresh the baseline with `make bench-report`
# and commit it.
bench-gate:
	$(GO) run ./cmd/hivebench -quick -json -o /tmp/bench-candidate.json
	$(GO) run ./cmd/benchgate -baseline BENCH_hive.json -candidate /tmp/bench-candidate.json

clean:
	@:
