// Parallel application: runs the ocean workload as a spanning task across
// all four cells and shows the two kinds of intercell memory sharing at
// work (§5): logical-level sharing (threads import each other's grid
// partitions, opening the firewall for write sharing) and physical-level
// sharing (a memory-pressured cell borrows page frames). It finishes with
// the §4.2 firewall population statistics.
package main

import (
	"fmt"

	hive "repro"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vm"
)

func main() {
	h := hive.BootCells(4)

	// Sample remotely-writable pages per cell every 20 ms, as the paper
	// did over 5.0 s of execution.
	samplers := make([]*stats.Sampler, 4)
	for i := range samplers {
		cell := h.Cells[i]
		samplers[i] = &stats.Sampler{Interval: 20 * sim.Millisecond}
		samplers[i].Start(h.Eng, func() float64 {
			return float64(cell.VM.RemotelyWritablePages())
		})
	}

	cfg := hive.DefaultOcean()
	res := hive.RunOcean(h, cfg, 60*hive.Second)
	fmt.Printf("ocean (%d threads, %d grid pages): %.3fs virtual, done=%v\n",
		cfg.Threads, cfg.GridPages, res.Elapsed.Seconds(), res.Done)
	fmt.Printf("remote page imports during the run: %d\n\n", res.RemoteFaults)

	fmt.Println("firewall population (remotely-writable pages per cell, 20 ms samples):")
	for i, s := range samplers {
		s.Stop()
		fmt.Printf("  cell %d: avg %.0f  max %.0f   (paper: ocean averaged 550)\n",
			i, s.Mean(), s.Max())
	}

	// Physical-level sharing: exhaust cell 0's free pool; the next
	// allocation borrows a frame from a peer's memory.
	fmt.Println("\nphysical-level sharing (frame loaning):")
	done := false
	h.Cells[0].Procs.Spawn("pressure", 30, func(p *proc.Process, t *sim.Task) {
		defer func() { done = true }()
		v := h.Cells[0].VM
		n := 0
		for {
			if _, err := v.AllocFrame(t, vm.AllocOpts{Acceptable: []int{0}}); err != nil {
				break
			}
			n++
		}
		fmt.Printf("  cell 0 exhausted its pool after %d local frames\n", n)
		f, err := v.AllocFrame(t, vm.AllocOpts{})
		if err != nil {
			fmt.Println("  borrow failed:", err)
			return
		}
		fmt.Printf("  next frame %d borrowed from node %d (cell %d)\n",
			f, h.M.HomeNode(f), h.CellOfNode[h.M.HomeNode(f)])
		fmt.Printf("  cell 0 borrowed=%d, lender loaned=%d\n",
			v.BorrowedFrames(), h.Cells[h.CellOfNode[h.M.HomeNode(f)]].VM.LoanedFrames())
	})
	h.RunUntil(func() bool { return done }, 30*hive.Second)
}
