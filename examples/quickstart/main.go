// Quickstart: boot a four-cell Hive, run a small parallel make, inject a
// fail-stop hardware fault into one cell mid-run, and watch the other
// three cells detect it, run recovery, and keep serving.
package main

import (
	"fmt"

	hive "repro"
)

func main() {
	h := hive.BootCells(4)
	fmt.Printf("booted: %d cells on %d nodes\n", len(h.Cells), h.Cfg.Machine.Nodes)

	// A small compile workload across all cells.
	cfg := hive.DefaultPmake()
	cfg.Files = 6
	cfg.CompileCPU = 300 * hive.Millisecond
	cfg.NamespaceOps = 200

	// Fail cell 2 half a second in.
	h.Eng.At(500*hive.Millisecond, func() {
		fmt.Printf("[%v] cell 2 suffers a fail-stop hardware fault\n", h.Now())
		h.Cells[2].FailHardware()
	})

	res := hive.RunPmake(h, cfg, 30*hive.Second)
	fmt.Printf("[%v] pmake finished: done=%v\n", h.Now(), res.Done)

	fmt.Printf("live cells: %d of 4\n", h.Coord.LiveCount())
	fmt.Printf("last cell entered recovery %.1f ms after the fault\n",
		(h.Coord.LastDetectAt - 500*hive.Millisecond).Millis())

	if bad, report := hive.VerifyOutputs(h, res); bad == 0 {
		fmt.Println("output files: no data integrity violations")
	} else {
		fmt.Printf("INTEGRITY VIOLATIONS: %d %v\n", bad, report)
	}

	// The survivors still run work.
	check := hive.DefaultPmake()
	check.Files = 3
	check.CompileCPU = 50 * hive.Millisecond
	check.NamespaceOps = 50
	check.Seed = 0xFACE
	cres := hive.RunPmake(h, check, 30*hive.Second)
	fmt.Printf("post-fault correctness check: done=%v errors=%v\n", cres.Done, cres.Errors)
}
