// CC-NOW: §8 proposes Hive as "a natural starting point for a CC-NOW
// operating system" — a cache-coherent network of workstations with the
// fault isolation of a cluster and the resource sharing of a
// multiprocessor. This example boots the same Hive over a 5 µs
// network-class interconnect instead of FLASH's 700 ns mesh, shares memory
// across the "workstations", fails one, and shows containment is
// unaffected while remote-operation latency stretches with the link.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/vm"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Machine.RemoteMissNs = 5 * sim.Microsecond // LAN-attached memory
	cfg.Mounts = nil
	h := core.Boot(cfg)
	fmt.Printf("booted %d workstation-cells over a %v link\n",
		len(h.Cells), cfg.Machine.RemoteMissNs)

	// Share a file page across the network.
	done := false
	h.Cells[0].Procs.Spawn("sharer", 1, func(p *proc.Process, t *sim.Task) {
		defer func() { done = true }()
		hd, err := h.Cells[3].FS.Create(t, "/shared/doc")
		if err != nil {
			return
		}
		h.Cells[3].FS.Write(t, hd, 4, 9)
		lp := vm.LogicalPage{Obj: vm.ObjID{Kind: vm.FileObj, Home: 3, Num: uint64(hd.Key.ID)}}
		start := t.Now()
		if _, err := p.MapShared(t, lp, true); err != nil {
			fmt.Println("map failed:", err)
			return
		}
		fmt.Printf("cross-workstation write mapping established in %v\n", t.Now()-start)
	})
	h.RunUntil(func() bool { return done }, 10*sim.Second)

	// A workstation dies; the rest of the "cluster" carries on.
	at := h.Now()
	fmt.Printf("[%v] workstation 3 fails\n", at)
	h.Cells[3].FailHardware()
	h.RunUntil(func() bool { return h.Coord.LiveCount() == 3 }, 10*sim.Second)
	fmt.Printf("detected and recovered %.1f ms later; %d workstations live\n",
		(h.Coord.LastDetectAt - at).Millis(), h.Coord.LiveCount())
	if bad := h.CheckInvariants(); len(bad) == 0 {
		fmt.Println("cross-cell kernel state audits clean")
	} else {
		fmt.Println("INVARIANT VIOLATIONS:", bad)
	}
}
