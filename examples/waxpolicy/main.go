// Wax policy: demonstrates the user-level resource manager of §3.2. Wax
// threads span every cell, build a global view through shared memory, and
// steer the per-cell policies of Table 3.4. The example puts one cell
// under memory pressure, shows Wax retargeting its page allocator at the
// memory-rich cells, and then kills a cell to show Wax dying with it and
// being restarted from scratch by its supervisor.
package main

import (
	"fmt"

	hive "repro"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/wax"
)

func main() {
	h := hive.BootCells(4)
	sup := wax.Supervise(h)
	h.Run(120 * sim.Millisecond)
	fmt.Printf("wax incarnation 1: %v (threads on all %d cells)\n", sup.Cur.Alive(), h.Coord.LiveCount())

	// Pressure: drain cell 0's free pool.
	drained := false
	h.Cells[0].Procs.Spawn("hog", 40, func(p *proc.Process, t *sim.Task) {
		v := h.Cells[0].VM
		for v.FreePages() > 0 {
			if _, err := v.AllocFrame(t, vm.AllocOpts{Acceptable: []int{0}}); err != nil {
				break
			}
		}
		drained = true
	})
	h.RunUntil(func() bool { return drained }, 10*hive.Second)
	fmt.Printf("cell 0 free pages: %d (pressured)\n", h.Cells[0].VM.FreePages())

	// Wax notices within a policy interval or two.
	h.RunUntil(func() bool { return len(h.Cells[0].VM.AllocTargets) > 0 }, 2*hive.Second)
	fmt.Printf("wax set cell 0's allocation targets to cells %v (retargets so far: %d)\n",
		h.Cells[0].VM.AllocTargets, sup.Cur.AllocRetargets)

	// Borrow through the hinted target.
	borrowed := false
	h.Cells[0].Procs.Spawn("worker", 41, func(p *proc.Process, t *sim.Task) {
		f, err := h.Cells[0].VM.AllocFrame(t, vm.AllocOpts{})
		if err == nil {
			fmt.Printf("allocation satisfied by a frame from cell %d\n",
				h.CellOfNode[h.M.HomeNode(f)])
			borrowed = true
		}
	})
	h.RunUntil(func() bool { return borrowed }, 10*hive.Second)

	// Hint sanity-checking: a bogus hint is refused by the cell.
	if err := h.Cells[1].ApplyAllocTargets([]int{1}); err != nil {
		fmt.Printf("cell 1 rejected a bad hint: %v\n", err)
	}

	// Kill a cell: Wax uses resources from all cells, so it dies, and
	// the supervisor starts a fresh incarnation over the survivors.
	first := sup.Cur
	fmt.Printf("\n[%v] cell 3 fails\n", h.Now())
	h.Cells[3].FailHardware()
	h.RunUntil(func() bool { return !first.Alive() }, 5*hive.Second)
	fmt.Println("wax incarnation 1 died with the cell (by design, §3.2)")
	h.RunUntil(func() bool { return h.Coord.LiveCount() == 3 }, 5*hive.Second)
	h.RunUntil(func() bool { return sup.Restarts > 0 && sup.Cur.Alive() }, 10*hive.Second)
	fmt.Printf("supervisor started incarnation 2 over %d live cells (restarts: %d)\n",
		h.Coord.LiveCount(), sup.Restarts)
	sup.Stop()
}
