// Compute server: the paper's motivating scenario (§1). A multiprogrammed
// machine runs independent users' jobs on different cells. One cell fails;
// only the jobs that used its resources die. The example also walks the
// §4.2 wild-write defense end to end: a file page write-shared with the
// failing cell is preemptively discarded, the file's generation number
// rises, descriptors opened before the failure get EIO, and a fresh open
// reads the stable on-disk data.
package main

import (
	"fmt"

	hive "repro"
	"repro/internal/fs"
	"repro/internal/proc"
	"repro/internal/sim"
	"repro/internal/vm"
)

func main() {
	h := hive.BootCells(4)

	// Four independent "users", one per cell, each computing and writing
	// a private result file homed on their own cell.
	finished := make([]bool, 4)
	for i := 0; i < 4; i++ {
		i := i
		cell := h.Cells[i]
		cell.Procs.Spawn(fmt.Sprintf("user%d", i), 10+i, func(p *proc.Process, t *sim.Task) {
			hd, err := cell.FS.Create(t, fmt.Sprintf("/home/u%d/result", i))
			if err != nil {
				return
			}
			for round := 0; round < 20; round++ {
				p.Compute(t, 50*sim.Millisecond)
				cell.FS.Write(t, hd, 2, uint64(i))
			}
			finished[i] = true
		})
	}

	// An editor on cell 1 with a half-saved document: 4 pages stable on
	// disk, 2 dirty pages only in memory. A collaborator on cell 2 maps
	// one dirty page writable — opening the firewall to cell 2.
	var editorHandle *fs.Handle
	var docKey fs.Key
	ready := false
	h.Cells[1].Procs.Spawn("editor", 20, func(p *proc.Process, t *sim.Task) {
		hd, err := h.Cells[1].FS.Create(t, "/served/doc")
		if err != nil {
			return
		}
		h.Cells[1].FS.Write(t, hd, 4, 7)
		h.Cells[1].FS.Sync(t)
		h.Cells[1].FS.Write(t, hd, 2, 8) // pages 4,5 dirty in memory
		editorHandle = hd
		docKey = hd.Key
		ready = true
	})
	h.RunUntil(func() bool { return ready }, 10*hive.Second)

	collaboratorMapped := false
	h.Cells[2].Procs.Spawn("collaborator", 22, func(p *proc.Process, t *sim.Task) {
		lp := vm.LogicalPage{
			Obj: vm.ObjID{Kind: vm.FileObj, Home: 1, Num: uint64(docKey.ID)},
			Off: 4, // one of the dirty pages
		}
		if _, err := p.MapShared(t, lp, true); err == nil {
			collaboratorMapped = true
		}
		for {
			p.Compute(t, 20*sim.Millisecond)
		}
	})
	h.RunUntil(func() bool { return collaboratorMapped }, 10*hive.Second)
	fmt.Printf("[%v] collaborator on cell 2 write-shares a dirty page of /served/doc\n", h.Now())
	fmt.Printf("cell 1 now has %d remotely-writable page(s)\n",
		h.Cells[1].VM.RemotelyWritablePages())

	fmt.Printf("[%v] cell 2 suffers a fail-stop fault\n", h.Now())
	failAt := h.Now()
	h.Cells[2].FailHardware()
	h.RunUntil(func() bool { return h.Coord.LiveCount() == 3 }, 10*hive.Second)
	fmt.Printf("recovery confirmed cell 2 dead %.1f ms after the fault\n",
		(h.Coord.LastDetectAt - failAt).Millis())

	h.RunUntil(func() bool {
		return finished[0] && finished[1] && finished[3]
	}, 60*hive.Second)

	fmt.Println("\nindependent users after the failure:")
	for i, ok := range finished {
		status := "completed"
		if !ok {
			status = "lost (was on the failed cell)"
		}
		fmt.Printf("  user%d on cell %d: %s\n", i, i, status)
	}

	// The dirty page writable by cell 2 was preemptively discarded, so
	// the file's generation number rose: the editor's old descriptor
	// gets EIO; a fresh open reads the stable data from disk.
	done := false
	h.Cells[1].Procs.Spawn("checker", 23, func(p *proc.Process, t *sim.Task) {
		defer func() { done = true }()
		gen, _ := h.Cells[1].FS.Generation(docKey.ID)
		fmt.Printf("\n/served/doc generation after recovery: %d (descriptor had %d)\n",
			gen, editorHandle.Gen)
		editorHandle.Pos = 0
		_, err := h.Cells[1].FS.Read(t, editorHandle, 1)
		fmt.Printf("pre-failure descriptor read: %v\n", err)
		fresh, err := h.Cells[1].FS.Open(t, "/served/doc")
		if err != nil {
			fmt.Println("fresh open failed:", err)
			return
		}
		pages, err := h.Cells[1].FS.Read(t, fresh, 4)
		ok := err == nil
		for i, pg := range pages {
			if pg.Tag != fs.PageTag(docKey, int64(i), 7) {
				ok = false
			}
		}
		fmt.Printf("fresh descriptor: read %d stable pages from disk, intact=%v\n", len(pages), ok)
	})
	h.RunUntil(func() bool { return done }, 10*hive.Second)
}
