package hive

import (
	"testing"
	"testing/quick"
)

// The root-package tests exercise the public API end to end; the
// subsystem-level behaviour is covered by the internal packages' suites.

func TestPublicBootAndRun(t *testing.T) {
	h := Boot(DefaultConfig())
	h.Run(100 * Millisecond)
	if got := len(h.LiveCells()); got != 4 {
		t.Fatalf("live cells = %d", got)
	}
	if h.Now() < 100*Millisecond {
		t.Fatalf("now = %v", h.Now())
	}
}

func TestPublicWorkloadSmall(t *testing.T) {
	h := BootCells(2)
	cfg := DefaultPmake()
	cfg.Files = 3
	cfg.CompileCPU = 30 * Millisecond
	cfg.NamespaceOps = 40
	cfg.SharedPages = 32
	cfg.AnonPages = 16
	cfg.SrcPages = 4
	cfg.OutPages = 2
	res := RunPmake(h, cfg, 30*Second)
	if !res.Done {
		t.Fatalf("pmake incomplete: %v", res.Errors)
	}
	if bad, report := VerifyOutputs(h, res); bad != 0 {
		t.Fatalf("integrity: %v", report)
	}
}

func TestValidateCellsRejectsUnsupportedCounts(t *testing.T) {
	for _, cells := range []int{-1, 0, MaxCells + 1, 1000} {
		if err := ValidateCells(cells); err == nil {
			t.Fatalf("ValidateCells(%d) = nil, want error", cells)
		}
	}
	for _, cells := range []int{1, 2, 3, 4, 8, 16, 32, MaxCells} {
		if err := ValidateCells(cells); err != nil {
			t.Fatalf("ValidateCells(%d) = %v, want nil", cells, err)
		}
	}
}

func TestBootCellsPanicsOnUnsupportedCounts(t *testing.T) {
	// BootCells panics where ValidateCells errors: an unsupported count is
	// a programming mistake, not a runtime condition.
	for _, cells := range []int{0, MaxCells + 1} {
		cells := cells
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("BootCells(%d) did not panic", cells)
				}
			}()
			BootCells(cells)
		}()
	}
}

func TestPublicFaultInjection(t *testing.T) {
	tr := RunTrial(NodeFailRandom, 3)
	if !tr.OK() {
		t.Fatalf("trial failed: %+v", tr)
	}
	if tr.DetectMs <= 0 || tr.DetectMs > 100 {
		t.Fatalf("detect = %.1f ms", tr.DetectMs)
	}
}

func TestScenarioMetadata(t *testing.T) {
	total := 0
	hw := 0
	for _, s := range []Scenario{NodeFailProcCreate, NodeFailCOWSearch, NodeFailRandom, CorruptAddrMap, CorruptCOWTree} {
		if s.String() == "unknown" {
			t.Fatalf("scenario %d unnamed", s)
		}
		total += s.PaperTests()
		if s.Hardware() {
			hw += s.PaperTests()
		}
	}
	if total != 69 || hw != 49 {
		t.Fatalf("campaign = %d trials (%d hardware), want 69 (49)", total, hw)
	}
}

// Property: booting with any valid seed is deterministic — two boots with
// the same seed reach an identical virtual time after identical work.
func TestPropertyDeterministicBoot(t *testing.T) {
	f := func(seed int16) bool {
		run := func() Time {
			cfg := DefaultConfig()
			cfg.Machine.MemPerNodeMB = 2
			cfg.Seed = int64(seed)
			h := Boot(cfg)
			h.Run(50 * Millisecond)
			return h.Now()
		}
		return run() == run()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

// Property: a fail-stop fault in any single cell of a healthy 4-cell
// system is always detected and never takes down another cell.
func TestPropertySingleFaultAlwaysContained(t *testing.T) {
	f := func(cellRaw, seedRaw uint8) bool {
		cell := int(cellRaw) % 4
		cfg := DefaultConfig()
		cfg.Machine.MemPerNodeMB = 2
		cfg.Seed = int64(seedRaw) + 1
		h := Boot(cfg)
		h.Run(30 * Millisecond)
		h.Cells[cell].FailHardware()
		if !h.RunUntil(func() bool { return h.Coord.LiveCount() == 3 }, h.Now()+Second) {
			return false
		}
		for _, c := range h.Cells {
			if c.ID != cell && c.Failed() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// Property: a run that includes a failure + recovery is reproducible —
// same seed, same fault time, same final observable state.
func TestPropertyDeterministicRecovery(t *testing.T) {
	run := func() (Time, int64) {
		cfg := DefaultConfig()
		cfg.Machine.MemPerNodeMB = 4
		cfg.Seed = 4242
		h := Boot(cfg)
		res := RunPmake(h, smallTestPmake(), 30*Second)
		_ = res
		h.Eng.At(h.Now(), func() {})
		at := h.Now()
		h.Cells[1].FailHardware()
		h.RunUntil(func() bool { return h.Coord.LiveCount() == 3 }, at+Second)
		h.Run(h.Now() + 200*Millisecond)
		var discards int64
		for _, c := range h.Cells {
			discards += c.VM.Metrics.Counter("vm.recovery_discards").Value()
		}
		return h.Coord.LastDetectAt, discards
	}
	d1, n1 := run()
	d2, n2 := run()
	if d1 != d2 || n1 != n2 {
		t.Fatalf("recovery not deterministic: (%v,%d) vs (%v,%d)", d1, n1, d2, n2)
	}
}

func smallTestPmake() PmakeConfig {
	cfg := DefaultPmake()
	cfg.Files = 3
	cfg.CompileCPU = 30 * Millisecond
	cfg.NamespaceOps = 40
	cfg.SharedPages = 32
	cfg.AnonPages = 16
	cfg.SrcPages = 4
	cfg.OutPages = 2
	cfg.TmpMapPages = 2
	return cfg
}
