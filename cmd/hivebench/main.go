// Command hivebench regenerates every table and figure of the paper's
// evaluation and prints the measured values next to the published ones.
//
// Usage:
//
//	hivebench                 # everything, full Table 7.4 campaign
//	hivebench -quick          # reduced fault-injection trial counts
//	hivebench -j 8            # fan independent trials across 8 workers
//	hivebench -json           # machine-readable benchmark report on stdout
//	hivebench -json -o BENCH_hive.json
//	hivebench -trace out.json # Perfetto trace of a fault-injection trial
//	hivebench -only t72       # one experiment: careful41, rpc6, t52,
//	                          # t72, t73, t74, fw42, traffic52, reboot,
//	                          # frontend, t81, scale, scalability,
//	                          # agreement, cowlookup, sipsipi, fwgran,
//	                          # ccnow
//
// Experiments are deterministic simulations: the tables are byte-identical
// at every -j. The JSON report additionally records wall-clock time per
// experiment so the simulator's real-time performance is tracked PR to PR.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/faultinject"
	"repro/internal/harness"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/workload"
)

// experimentReport is one experiment's entry in the -json output. Metrics
// are deterministic and perf-gated; Info carries wall-clock-derived values
// (engine events/sec) that are recorded but never gated.
type experimentReport struct {
	ID      string             `json:"id"`
	WallMs  float64            `json:"wall_ms"`
	Metrics map[string]float64 `json:"metrics"`
	Info    map[string]float64 `json:"info,omitempty"`
}

// benchReport is the full -json document.
type benchReport struct {
	Name        string             `json:"name"`
	GoVersion   string             `json:"go_version"`
	GOMAXPROCS  int                `json:"gomaxprocs"`
	Jobs        int                `json:"jobs"`
	Quick       bool               `json:"quick"`
	Experiments []experimentReport `json:"experiments"`
	TotalWallMs float64            `json:"total_wall_ms"`
}

// runCtx threads output mode and the report accumulator through experiments.
type runCtx struct {
	jsonMode bool
	report   *benchReport
	metrics  map[string]float64
	info     map[string]float64
}

// printf emits human-readable output (suppressed in -json mode).
func (c *runCtx) printf(format string, args ...any) {
	if !c.jsonMode {
		fmt.Printf(format, args...)
	}
}

// println emits a human-readable line (suppressed in -json mode).
func (c *runCtx) println(args ...any) {
	if !c.jsonMode {
		fmt.Println(args...)
	}
}

// metric records one measured value for the JSON report.
func (c *runCtx) metric(name string, v float64) { c.metrics[name] = v }

// infoMetric records a wall-clock-derived value: reported, never gated.
func (c *runCtx) infoMetric(name string, v float64) { c.info[name] = v }

func main() {
	quick := flag.Bool("quick", false, "reduced fault-injection trial counts")
	only := flag.String("only", "", "run a single experiment by id")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "parallel trial workers (1 = sequential)")
	jsonOut := flag.Bool("json", false, "emit a machine-readable benchmark report instead of tables")
	outPath := flag.String("o", "", "write the -json report to a file instead of stdout")
	tracePath := flag.String("trace", "", "write a Chrome trace of one node-failure trial, then exit")
	shards := flag.String("shards", "", "engine mode for every experiment Hive: 0 = classic (default), N = sharded with N workers, auto = one worker per cell; deterministic metrics are identical at every positive value")
	flag.Parse()

	parallel.SetDefaultWorkers(*jobs)
	nshards, err := workload.ParseShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hivebench:", err)
		os.Exit(2)
	}
	workload.SetDefaultShards(nshards)

	if *tracePath != "" {
		tr := faultinject.RunTrialOpts(faultinject.NodeFailRandom, 0,
			faultinject.TrialOpts{KeepTrace: true, TraceCap: 1 << 16})
		if err := os.WriteFile(*tracePath, tr.TraceJSON, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "hivebench: write trace:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s: node-failure trial, detect %.1f ms, recovery %.1f ms (load in ui.perfetto.dev)\n",
			*tracePath, tr.DetectMs, tr.RecoveryMs)
		return
	}

	ctx := &runCtx{
		jsonMode: *jsonOut,
		report: &benchReport{
			Name:        "hivebench",
			GoVersion:   runtime.Version(),
			GOMAXPROCS:  runtime.GOMAXPROCS(0),
			Jobs:        parallel.Default().Workers(),
			Quick:       *quick,
			Experiments: []experimentReport{},
		},
	}
	start := time.Now()
	run := func(id string, fn func(c *runCtx)) {
		if *only != "" && *only != id {
			return
		}
		ctx.metrics = map[string]float64{}
		ctx.info = map[string]float64{}
		expStart := time.Now()
		fn(ctx)
		rep := experimentReport{
			ID:      id,
			WallMs:  float64(time.Since(expStart).Microseconds()) / 1000,
			Metrics: ctx.metrics,
		}
		if len(ctx.info) > 0 {
			rep.Info = ctx.info
		}
		ctx.report.Experiments = append(ctx.report.Experiments, rep)
	}

	run("careful41", func(c *runCtx) {
		r := harness.RunCareful41()
		c.metric("careful_read_us", r.CarefulReadUs)
		c.metric("miss_share_us", r.MissShareUs)
		c.metric("null_rpc_us", r.NullRPCUs)
		tb := stats.NewTable("§4.1 — careful reference protocol vs RPC",
			"operation", "paper", "measured")
		tb.AddRow("careful_on → clock read → careful_off", "1.16 µs", harness.FormatUs(r.CarefulReadUs))
		tb.AddRow("  of which remote cache miss", "0.70 µs", harness.FormatUs(r.MissShareUs))
		tb.AddRow("null RPC alternative", "7.2 µs", harness.FormatUs(r.NullRPCUs))
		c.println(tb)
	})

	run("rpc6", func(c *runCtx) {
		r := harness.RunRPC6()
		c.metric("null_us", r.NullUs)
		c.metric("real_us", r.RealUs)
		c.metric("oversize_us", r.OversizeUs)
		c.metric("queued_us", r.QueuedUs)
		tb := stats.NewTable("§6 — RPC subsystem latencies",
			"operation", "paper", "measured")
		tb.AddRow("null interrupt-level RPC", "7.2 µs", harness.FormatUs(r.NullUs))
		tb.AddRow("common interrupt-level request (RPC component)", "9.6 µs", harness.FormatUs(r.RealUs))
		tb.AddRow("request with >1 line of data (Table 5.2)", "17.3 µs", harness.FormatUs(r.OversizeUs))
		tb.AddRow("null queued RPC", "34 µs", harness.FormatUs(r.QueuedUs))
		c.println(tb)
	})

	run("t52", func(c *runCtx) {
		t52 := harness.RunTable52()
		c.metric("local_us", t52.LocalUs)
		c.metric("remote_us", t52.RemoteUs)
		c.metric("breakdown_total_us", t52.Components.MeanTotal())
		tb := stats.NewTable("Table 5.2 — remote page fault latency",
			"quantity", "paper", "measured")
		tb.AddRow("local page fault (cache hit)", "6.9 µs", harness.FormatUs(t52.LocalUs))
		tb.AddRow("remote page fault (data-home cache hit)", "50.7 µs", harness.FormatUs(t52.RemoteUs))
		c.println(tb)
		c.println("component means (calibrated decomposition):")
		c.printf("%s", t52.Components.Format())
		c.println()
	})

	run("t73", func(c *runCtx) {
		t73 := harness.RunTable73()
		c.metric("read4mb_local_ms", t73.Read4MBLocalMs)
		c.metric("read4mb_remote_ms", t73.Read4MBRemoteMs)
		c.metric("write4mb_local_ms", t73.Write4MBLocalMs)
		c.metric("write4mb_remote_ms", t73.Write4MBRemoteMs)
		c.metric("open_local_us", t73.OpenLocalUs)
		c.metric("open_remote_us", t73.OpenRemoteUs)
		c.metric("fault_local_us", t73.FaultLocalUs)
		c.metric("fault_remote_us", t73.FaultRemoteUs)
		tb := stats.NewTable("Table 7.3 — local vs remote kernel operations",
			"operation", "paper local", "measured local", "paper remote", "measured remote")
		tb.AddRow("4 MB file read", "65.0 ms", harness.FormatMs(t73.Read4MBLocalMs), "76.2 ms", harness.FormatMs(t73.Read4MBRemoteMs))
		tb.AddRow("4 MB file write/extend", "83.7 ms", harness.FormatMs(t73.Write4MBLocalMs), "87.3 ms", harness.FormatMs(t73.Write4MBRemoteMs))
		tb.AddRow("open file", "148 µs", harness.FormatUs(t73.OpenLocalUs), "580 µs", harness.FormatUs(t73.OpenRemoteUs))
		tb.AddRow("page fault hitting file cache", "6.9 µs", harness.FormatUs(t73.FaultLocalUs), "50.7 µs", harness.FormatUs(t73.FaultRemoteUs))
		c.println(tb)
	})

	run("t72", func(c *runCtx) {
		rows := harness.RunTable72()
		tb := stats.NewTable("Table 7.2 — workload timings on the 4-processor machine",
			"workload", "IRIX (paper)", "IRIX (measured)", "1 cell", "2 cells", "4 cells")
		paperBase := map[string]string{"ocean": "6.07 s", "raytrace": "4.35 s", "pmake": "5.77 s"}
		paperSlow := map[string]string{"ocean": "1/1/-1 %", "raytrace": "0/0/1 %", "pmake": "1/10/11 %"}
		for _, r := range rows {
			c.metric(r.Workload+"_irix_s", r.IRIXSec)
			c.metric(r.Workload+"_slowdown1_pct", r.Slowdown1)
			c.metric(r.Workload+"_slowdown2_pct", r.Slowdown2)
			c.metric(r.Workload+"_slowdown4_pct", r.Slowdown4)
			tb.AddRow(r.Workload, paperBase[r.Workload], fmt.Sprintf("%.2f s", r.IRIXSec),
				harness.FormatPct(r.Slowdown1), harness.FormatPct(r.Slowdown2), harness.FormatPct(r.Slowdown4))
		}
		c.println(tb)
		c.println("paper slowdowns (1/2/4 cells):")
		for _, r := range rows {
			c.printf("  %-9s %s\n", r.Workload, paperSlow[r.Workload])
		}
		c.println()
	})

	run("fw42", func(c *runCtx) {
		fw := harness.RunFirewall42()
		c.metric("write_miss_overhead_pct", fw.WriteMissOverheadPct)
		c.metric("pmake_avg_writable", fw.PmakeAvgWritable)
		c.metric("pmake_max_writable", fw.PmakeMaxWritable)
		c.metric("pmake_user_pages", fw.PmakeUserPages)
		c.metric("ocean_avg_writable", fw.OceanAvgWritable)
		tb := stats.NewTable("§4.2 — firewall cost and management policy",
			"quantity", "paper", "measured")
		tb.AddRow("remote write miss latency increase", "+6.3 % (pmake)", harness.FormatPct(fw.WriteMissOverheadPct))
		tb.AddRow("pmake: avg remotely-writable pages/cell", "15", fmt.Sprintf("%.1f", fw.PmakeAvgWritable))
		tb.AddRow("pmake: max remotely-writable pages", "42 (/tmp server)", fmt.Sprintf("%.0f", fw.PmakeMaxWritable))
		tb.AddRow("pmake: user pages per cell", "≈6000", fmt.Sprintf("%.0f", fw.PmakeUserPages))
		tb.AddRow("ocean: avg remotely-writable pages/cell", "550", fmt.Sprintf("%.0f", fw.OceanAvgWritable))
		c.println(tb)
	})

	run("traffic52", func(c *runCtx) {
		tr := harness.RunPmakeFaultTraffic()
		c.metric("faults_1cell", float64(tr.Faults1Cell))
		c.metric("faults_4cell", float64(tr.Faults4Cell))
		c.metric("remote_4cell", float64(tr.Remote4Cell))
		c.metric("fault_ms_1cell", tr.FaultMs1Cell)
		c.metric("fault_ms_4cell", tr.FaultMs4Cell)
		tb := stats.NewTable("§5.2 — pmake page-cache fault traffic",
			"quantity", "paper", "measured")
		tb.AddRow("page-cache faults (1 cell)", "8935", fmt.Sprint(tr.Faults1Cell))
		tb.AddRow("page-cache faults (4 cells)", "8935", fmt.Sprint(tr.Faults4Cell))
		tb.AddRow("remote on 4 cells", "4946", fmt.Sprint(tr.Remote4Cell))
		tb.AddRow("cumulative fault time (1 cell)", "117 ms", harness.FormatMs(tr.FaultMs1Cell))
		tb.AddRow("cumulative fault time (4 cells)", "455 ms", harness.FormatMs(tr.FaultMs4Cell))
		c.println(tb)
	})

	run("t74", func(c *runCtx) {
		scale := 1.0
		if *quick {
			scale = 0.2
		}
		rows := harness.RunTable74(scale)
		allOK := 1.0
		for _, r := range rows {
			key := fmt.Sprintf("s%d", int(r.Scenario))
			c.metric(key+"_tests", float64(r.Tests))
			c.metric(key+"_avg_detect_ms", r.AvgDetect)
			c.metric(key+"_max_detect_ms", r.MaxDetect)
			c.metric(key+"_avg_recovery_ms", r.AvgRecov)
			if !r.AllOK {
				allOK = 0
			}
		}
		c.metric("all_contained", allOK)
		c.println(harness.FormatTable74(rows))
		c.println("paper: avg/max detect (ms) = 16/21, 10/11, 21/45, 38/65, 401/760; recovery 40-80 ms; all contained")
		c.println()
	})

	run("reboot", func(c *runCtx) {
		scale := 1.0
		if *quick {
			scale = 0.5
		}
		rows := harness.RunRebootLoop(scale)
		allOK := 1.0
		for _, r := range rows {
			key := fmt.Sprintf("s%d", int(r.Scenario))
			c.metric(key+"_tests", float64(r.Tests))
			c.metric(key+"_avg_restore_ms", r.AvgRestore)
			c.metric(key+"_p99_restore_ms", r.P99Restore)
			c.metric(key+"_loop_p99_ms", r.AvgLoopP99)
			if !r.AllOK {
				allOK = 0
			}
		}
		c.metric("all_contained", allOK)
		c.println(harness.FormatRebootLoop(rows))
		c.println("time-to-restored-full-capacity is death verdict → join-round commit;")
		c.println("loop p99 is the probe-op latency while the loop ran (§4.3 closed end-to-end).")
		c.println()
	})

	run("frontend", func(c *runCtx) {
		scale := 1.0
		if *quick {
			scale = 0.5
		}
		rep := harness.RunFrontendSweep(scale)
		for _, p := range rep.Points {
			key := fmt.Sprintf("x%02.0f", p.Multiplier*10)
			c.metric(key+"_jobs", float64(p.Completed))
			c.metric(key+"_shed", float64(p.Shed))
			c.metric(key+"_p50_us", p.Latency.P50)
			c.metric(key+"_p99_us", p.Latency.P99)
			c.metric(key+"_p999_us", p.Latency.P999)
			c.metric(key+"_goodput_per_s", p.GoodputPerSec)
			c.infoMetric(key+"_wall_jobs_per_s", float64(p.Completed)/p.WallSec)
		}
		f := rep.Fault
		c.metric("surge_tests", float64(f.Tests))
		c.metric("surge_avg_window_ms", f.AvgWindow)
		c.metric("surge_max_window_ms", f.MaxWindow)
		c.metric("surge_avg_restore_ms", f.AvgRestore)
		allOK := 0.0
		if f.AllOK {
			allOK = 1
		}
		c.metric("all_contained", allOK)
		c.println(harness.FormatFrontend(rep))
		c.println("open-loop arrivals in virtual time: the sweep is byte-identical at any -j/-shards;")
		c.println("the fault row kills a cell mid-surge and bounds the user-visible window by the restore time.")
		c.println()
	})

	run("t81", func(c *runCtx) {
		hw := harness.RunHardware81()
		b2f := func(b bool) float64 {
			if b {
				return 1
			}
			return 0
		}
		c.metric("firewall", b2f(hw.Firewall))
		c.metric("fault_model", b2f(hw.FaultModel))
		c.metric("remap_region", b2f(hw.RemapRegion))
		c.metric("sips", b2f(hw.SIPS))
		c.metric("cutoff", b2f(hw.Cutoff))
		tb := stats.NewTable("Table 8.1 — custom hardware features",
			"feature", "functional")
		tb.AddRow("firewall (per-page write permission bit-vector)", fmt.Sprint(hw.Firewall))
		tb.AddRow("memory fault model (bus errors, no stalls)", fmt.Sprint(hw.FaultModel))
		tb.AddRow("remap region (node-private trap vectors)", fmt.Sprint(hw.RemapRegion))
		tb.AddRow("SIPS (short interprocessor send)", fmt.Sprint(hw.SIPS))
		tb.AddRow("memory cutoff (panic isolation)", fmt.Sprint(hw.Cutoff))
		c.println(tb)
	})

	run("scale", func(c *runCtx) {
		trials := 2
		if *quick {
			trials = 1
		}
		rows := harness.RunScale([]int{8, 16, 32}, trials)
		allContained := 1.0
		for _, r := range rows {
			key := fmt.Sprintf("%dc", r.Cells)
			c.metric("pmake_s_"+key, r.PmakeSec)
			c.metric("ocean_s_"+key, r.OceanSec)
			c.metric("rpc_calls_"+key, float64(r.RPCCalls))
			c.metric("rpc_per_s_"+key, r.RPCPerSec)
			c.metric("events_"+key, float64(r.Events))
			c.metric("events_per_s_"+key, r.EventsPerSec)
			// scale_sharded: the same pmake on the sharded engine. The
			// dispatched-event counts and virtual timings are
			// deterministic and gated; the wall-clock events/sec of both
			// engine modes go to the ungated info section.
			c.metric("pmake_s_sharded_"+key, r.ShardedPmakeSec)
			c.metric("events_sharded_"+key, float64(r.ShardedEvents))
			c.metric("events_per_s_sharded_"+key, r.ShardedEventsPerSec)
			c.infoMetric("wall_events_per_s_classic_"+key, r.WallEventsPerSec)
			c.infoMetric("wall_events_per_s_sharded_"+key, r.ShardedWallEventsPerSec)
			c.metric("detect_ms_"+key, r.DetectMs)
			c.metric("recovery_ms_"+key, r.RecoveryMs)
			if !r.Contained {
				allContained = 0
			}
		}
		c.metric("all_contained", allContained)
		c.println(harness.FormatScale(rows))
		for _, r := range rows {
			c.printf("engine rate at %d cells: classic %.0f ev/s (wall), sharded %.0f ev/s (wall, %d workers)\n",
				r.Cells, r.WallEventsPerSec, r.ShardedWallEventsPerSec, workload.AutoShards(r.Cells))
		}
		c.println("recovery cost grows with round membership; containment must hold at every size.")
		c.println()
	})

	run("scalability", func(c *runCtx) {
		points := harness.RunScalability([]int{1, 2, 4, 8, 16})
		tb := stats.NewTable("§1 ablation — shared-everything SMP OS vs multicellular Hive (kernel ops completed)",
			"CPUs", "SMP OS", "Hive (1 cell/CPU)", "Hive/SMP")
		for _, p := range points {
			c.metric(fmt.Sprintf("smp_ops_%dcpu", p.CPUs), float64(p.SMPOps))
			c.metric(fmt.Sprintf("hive_ops_%dcpu", p.CPUs), float64(p.HiveOps))
			tb.AddRow(fmt.Sprint(p.CPUs), fmt.Sprint(p.SMPOps), fmt.Sprint(p.HiveOps),
				fmt.Sprintf("%.2fx", float64(p.HiveOps)/float64(p.SMPOps)))
		}
		c.println(tb)
	})

	run("cowlookup", func(c *runCtx) {
		r := harness.RunCOWLookupComparison()
		c.metric("sharedmem_us", r.SharedMemUs)
		c.metric("rpc_us", r.RPCUs)
		c.metric("touch_sm_us", r.TouchSMUs)
		c.metric("touch_rpc_us", r.TouchRPCUs)
		tb := stats.NewTable("§5.3 ablation — COW search: shared memory vs conventional RPC",
			"quantity", "shared memory", "RPC walk")
		tb.AddRow("cross-cell lookup (hit at root)", harness.FormatUs(r.SharedMemUs), harness.FormatUs(r.RPCUs))
		tb.AddRow("end-to-end touch (lookup + bind + access)", harness.FormatUs(r.TouchSMUs), harness.FormatUs(r.TouchRPCUs))
		c.println(tb)
		c.println(`paper: "A more conventional RPC-based approach would be simpler and`)
		c.println(` probably just as fast" — the bind RPC dominates either way.`)
		c.println()
	})

	run("sipsipi", func(c *runCtx) {
		r := harness.RunSIPSvsIPI()
		c.metric("sips_us", r.SIPSUs)
		c.metric("ipi_us", r.IPIUs)
		tb := stats.NewTable("§6 ablation — SIPS vs RPC layered on bare IPIs",
			"path", "round trip")
		tb.AddRow("SIPS (hardware message support)", harness.FormatUs(r.SIPSUs))
		tb.AddRow("IPI + polled per-sender shared-memory queues", harness.FormatUs(r.IPIUs))
		c.println(tb)
	})

	run("fwgran", func(c *runCtx) {
		bv, sb := harness.RunFirewallGranularity()
		c.metric("bitvector_blocked", float64(bv))
		c.metric("singlebit_blocked", float64(sb))
		tb := stats.NewTable("§4.2 ablation — firewall representation (wild writes blocked, 384 issued)",
			"design", "blocked")
		tb.AddRow("bit vector per page (FLASH)", fmt.Sprint(bv))
		tb.AddRow("single bit per page (rejected: global grant)", fmt.Sprint(sb))
		c.println(tb)
	})

	run("ccnow", func(c *runCtx) {
		r := harness.RunCCNOW()
		c.metric("fault_local_us", r.FaultLocalUs)
		c.metric("fault_remote_us", r.FaultRemoteUs)
		c.metric("detect_ms", r.DetectMs)
		contained := 0.0
		if r.Contained {
			contained = 1
		}
		c.metric("contained", contained)
		tb := stats.NewTable("§8 — CC-NOW: Hive on a cache-coherent network of workstations (5 µs link)",
			"quantity", "measured")
		tb.AddRow("local page fault (unchanged)", harness.FormatUs(r.FaultLocalUs))
		tb.AddRow("remote page fault over the NOW link", harness.FormatUs(r.FaultRemoteUs))
		tb.AddRow("failure detection", harness.FormatMs(r.DetectMs))
		tb.AddRow("containment", fmt.Sprint(r.Contained))
		c.println(tb)
	})

	run("agreement", func(c *runCtx) {
		ac := harness.RunAgreementComparison()
		c.metric("oracle_detect_ms", ac.OracleDetectMs)
		c.metric("vote_detect_ms", ac.VoteDetectMs)
		voteOK := 0.0
		if ac.VoteOK {
			voteOK = 1
		}
		c.metric("vote_ok", voteOK)
		tb := stats.NewTable("§4.3 ablation — agreement oracle vs real voting protocol",
			"mode", "detection (ms)", "confirmed")
		tb.AddRow("oracle (paper's configuration)", fmt.Sprintf("%.1f", ac.OracleDetectMs), "true")
		tb.AddRow("voting protocol", fmt.Sprintf("%.1f", ac.VoteDetectMs), fmt.Sprint(ac.VoteOK))
		c.println(tb)
	})

	ctx.report.TotalWallMs = float64(time.Since(start).Microseconds()) / 1000

	if *jsonOut {
		enc, err := json.MarshalIndent(ctx.report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "hivebench: marshal report:", err)
			os.Exit(1)
		}
		enc = append(enc, '\n')
		if *outPath != "" {
			if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "hivebench: write report:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d experiments, %.0f ms total)\n",
				*outPath, len(ctx.report.Experiments), ctx.report.TotalWallMs)
		} else {
			os.Stdout.Write(enc)
		}
		return
	}

	fmt.Println(strings.Repeat("-", 72))
	fmt.Println("All numbers are from the deterministic FLASH/Hive simulation;")
	fmt.Println("see EXPERIMENTS.md for the shape criteria and known deviations.")
}
