// Command hivebench regenerates every table and figure of the paper's
// evaluation and prints the measured values next to the published ones.
//
// Usage:
//
//	hivebench                 # everything, full Table 7.4 campaign
//	hivebench -quick          # reduced fault-injection trial counts
//	hivebench -only t72       # one experiment: careful41, rpc6, t52,
//	                          # t72, t73, t74, fw42, traffic52, t81,
//	                          # scalability, agreement, cowlookup,
//	                          # sipsipi, fwgran, ccnow
package main

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/harness"
	"repro/internal/stats"
)

func main() {
	quick := flag.Bool("quick", false, "reduced fault-injection trial counts")
	only := flag.String("only", "", "run a single experiment by id")
	flag.Parse()

	want := func(id string) bool { return *only == "" || *only == id }

	if want("careful41") {
		c := harness.RunCareful41()
		tb := stats.NewTable("§4.1 — careful reference protocol vs RPC",
			"operation", "paper", "measured")
		tb.AddRow("careful_on → clock read → careful_off", "1.16 µs", harness.FormatUs(c.CarefulReadUs))
		tb.AddRow("  of which remote cache miss", "0.70 µs", harness.FormatUs(c.MissShareUs))
		tb.AddRow("null RPC alternative", "7.2 µs", harness.FormatUs(c.NullRPCUs))
		fmt.Println(tb)
	}

	if want("rpc6") {
		r := harness.RunRPC6()
		tb := stats.NewTable("§6 — RPC subsystem latencies",
			"operation", "paper", "measured")
		tb.AddRow("null interrupt-level RPC", "7.2 µs", harness.FormatUs(r.NullUs))
		tb.AddRow("common interrupt-level request (RPC component)", "9.6 µs", harness.FormatUs(r.RealUs))
		tb.AddRow("request with >1 line of data (Table 5.2)", "17.3 µs", harness.FormatUs(r.OversizeUs))
		tb.AddRow("null queued RPC", "34 µs", harness.FormatUs(r.QueuedUs))
		fmt.Println(tb)
	}

	if want("t52") {
		t52 := harness.RunTable52()
		tb := stats.NewTable("Table 5.2 — remote page fault latency",
			"quantity", "paper", "measured")
		tb.AddRow("local page fault (cache hit)", "6.9 µs", harness.FormatUs(t52.LocalUs))
		tb.AddRow("remote page fault (data-home cache hit)", "50.7 µs", harness.FormatUs(t52.RemoteUs))
		fmt.Println(tb)
		fmt.Println("component means (calibrated decomposition):")
		fmt.Print(t52.Components.Format())
		fmt.Println()
	}

	if want("t73") {
		t73 := harness.RunTable73()
		tb := stats.NewTable("Table 7.3 — local vs remote kernel operations",
			"operation", "paper local", "measured local", "paper remote", "measured remote")
		tb.AddRow("4 MB file read", "65.0 ms", harness.FormatMs(t73.Read4MBLocalMs), "76.2 ms", harness.FormatMs(t73.Read4MBRemoteMs))
		tb.AddRow("4 MB file write/extend", "83.7 ms", harness.FormatMs(t73.Write4MBLocalMs), "87.3 ms", harness.FormatMs(t73.Write4MBRemoteMs))
		tb.AddRow("open file", "148 µs", harness.FormatUs(t73.OpenLocalUs), "580 µs", harness.FormatUs(t73.OpenRemoteUs))
		tb.AddRow("page fault hitting file cache", "6.9 µs", harness.FormatUs(t73.FaultLocalUs), "50.7 µs", harness.FormatUs(t73.FaultRemoteUs))
		fmt.Println(tb)
	}

	if want("t72") {
		rows := harness.RunTable72()
		tb := stats.NewTable("Table 7.2 — workload timings on the 4-processor machine",
			"workload", "IRIX (paper)", "IRIX (measured)", "1 cell", "2 cells", "4 cells")
		paperBase := map[string]string{"ocean": "6.07 s", "raytrace": "4.35 s", "pmake": "5.77 s"}
		paperSlow := map[string]string{"ocean": "1/1/-1 %", "raytrace": "0/0/1 %", "pmake": "1/10/11 %"}
		for _, r := range rows {
			tb.AddRow(r.Workload, paperBase[r.Workload], fmt.Sprintf("%.2f s", r.IRIXSec),
				harness.FormatPct(r.Slowdown1), harness.FormatPct(r.Slowdown2), harness.FormatPct(r.Slowdown4))
		}
		fmt.Println(tb)
		fmt.Println("paper slowdowns (1/2/4 cells):")
		for w, s := range paperSlow {
			fmt.Printf("  %-9s %s\n", w, s)
		}
		fmt.Println()
	}

	if want("fw42") {
		fw := harness.RunFirewall42()
		tb := stats.NewTable("§4.2 — firewall cost and management policy",
			"quantity", "paper", "measured")
		tb.AddRow("remote write miss latency increase", "+6.3 % (pmake)", harness.FormatPct(fw.WriteMissOverheadPct))
		tb.AddRow("pmake: avg remotely-writable pages/cell", "15", fmt.Sprintf("%.1f", fw.PmakeAvgWritable))
		tb.AddRow("pmake: max remotely-writable pages", "42 (/tmp server)", fmt.Sprintf("%.0f", fw.PmakeMaxWritable))
		tb.AddRow("pmake: user pages per cell", "≈6000", fmt.Sprintf("%.0f", fw.PmakeUserPages))
		tb.AddRow("ocean: avg remotely-writable pages/cell", "550", fmt.Sprintf("%.0f", fw.OceanAvgWritable))
		fmt.Println(tb)
	}

	if want("traffic52") {
		tr := harness.RunPmakeFaultTraffic()
		tb := stats.NewTable("§5.2 — pmake page-cache fault traffic",
			"quantity", "paper", "measured")
		tb.AddRow("page-cache faults (1 cell)", "8935", fmt.Sprint(tr.Faults1Cell))
		tb.AddRow("page-cache faults (4 cells)", "8935", fmt.Sprint(tr.Faults4Cell))
		tb.AddRow("remote on 4 cells", "4946", fmt.Sprint(tr.Remote4Cell))
		tb.AddRow("cumulative fault time (1 cell)", "117 ms", harness.FormatMs(tr.FaultMs1Cell))
		tb.AddRow("cumulative fault time (4 cells)", "455 ms", harness.FormatMs(tr.FaultMs4Cell))
		fmt.Println(tb)
	}

	if want("t74") {
		scale := 1.0
		if *quick {
			scale = 0.2
		}
		rows := harness.RunTable74(scale)
		fmt.Println(harness.FormatTable74(rows))
		fmt.Println("paper: avg/max detect (ms) = 16/21, 10/11, 21/45, 38/65, 401/760; recovery 40-80 ms; all contained")
		fmt.Println()
	}

	if want("t81") {
		hw := harness.RunHardware81()
		tb := stats.NewTable("Table 8.1 — custom hardware features",
			"feature", "functional")
		tb.AddRow("firewall (per-page write permission bit-vector)", fmt.Sprint(hw.Firewall))
		tb.AddRow("memory fault model (bus errors, no stalls)", fmt.Sprint(hw.FaultModel))
		tb.AddRow("remap region (node-private trap vectors)", fmt.Sprint(hw.RemapRegion))
		tb.AddRow("SIPS (short interprocessor send)", fmt.Sprint(hw.SIPS))
		tb.AddRow("memory cutoff (panic isolation)", fmt.Sprint(hw.Cutoff))
		fmt.Println(tb)
	}

	if want("scalability") {
		points := harness.RunScalability([]int{1, 2, 4, 8, 16})
		tb := stats.NewTable("§1 ablation — shared-everything SMP OS vs multicellular Hive (kernel ops completed)",
			"CPUs", "SMP OS", "Hive (1 cell/CPU)", "Hive/SMP")
		for _, p := range points {
			tb.AddRow(fmt.Sprint(p.CPUs), fmt.Sprint(p.SMPOps), fmt.Sprint(p.HiveOps),
				fmt.Sprintf("%.2fx", float64(p.HiveOps)/float64(p.SMPOps)))
		}
		fmt.Println(tb)
	}

	if want("cowlookup") {
		c := harness.RunCOWLookupComparison()
		tb := stats.NewTable("§5.3 ablation — COW search: shared memory vs conventional RPC",
			"quantity", "shared memory", "RPC walk")
		tb.AddRow("cross-cell lookup (hit at root)", harness.FormatUs(c.SharedMemUs), harness.FormatUs(c.RPCUs))
		tb.AddRow("end-to-end touch (lookup + bind + access)", harness.FormatUs(c.TouchSMUs), harness.FormatUs(c.TouchRPCUs))
		fmt.Println(tb)
		fmt.Println(`paper: "A more conventional RPC-based approach would be simpler and`)
		fmt.Println(` probably just as fast" — the bind RPC dominates either way.`)
		fmt.Println()
	}

	if want("sipsipi") {
		c := harness.RunSIPSvsIPI()
		tb := stats.NewTable("§6 ablation — SIPS vs RPC layered on bare IPIs",
			"path", "round trip")
		tb.AddRow("SIPS (hardware message support)", harness.FormatUs(c.SIPSUs))
		tb.AddRow("IPI + polled per-sender shared-memory queues", harness.FormatUs(c.IPIUs))
		fmt.Println(tb)
	}

	if want("fwgran") {
		bv, sb := harness.RunFirewallGranularity()
		tb := stats.NewTable("§4.2 ablation — firewall representation (wild writes blocked, 384 issued)",
			"design", "blocked")
		tb.AddRow("bit vector per page (FLASH)", fmt.Sprint(bv))
		tb.AddRow("single bit per page (rejected: global grant)", fmt.Sprint(sb))
		fmt.Println(tb)
	}

	if want("ccnow") {
		c := harness.RunCCNOW()
		tb := stats.NewTable("§8 — CC-NOW: Hive on a cache-coherent network of workstations (5 µs link)",
			"quantity", "measured")
		tb.AddRow("local page fault (unchanged)", harness.FormatUs(c.FaultLocalUs))
		tb.AddRow("remote page fault over the NOW link", harness.FormatUs(c.FaultRemoteUs))
		tb.AddRow("failure detection", harness.FormatMs(c.DetectMs))
		tb.AddRow("containment", fmt.Sprint(c.Contained))
		fmt.Println(tb)
	}

	if want("agreement") {
		ac := harness.RunAgreementComparison()
		tb := stats.NewTable("§4.3 ablation — agreement oracle vs real voting protocol",
			"mode", "detection (ms)", "confirmed")
		tb.AddRow("oracle (paper's configuration)", fmt.Sprintf("%.1f", ac.OracleDetectMs), "true")
		tb.AddRow("voting protocol", fmt.Sprintf("%.1f", ac.VoteDetectMs), fmt.Sprint(ac.VoteOK))
		fmt.Println(tb)
	}

	fmt.Println(strings.Repeat("-", 72))
	fmt.Println("All numbers are from the deterministic FLASH/Hive simulation;")
	fmt.Println("see EXPERIMENTS.md for the shape criteria and known deviations.")
}
