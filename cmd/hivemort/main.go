// Command hivemort is the post-mortem forensics tool: it re-derives
// fault-containment verdicts purely from the structured trace
// (internal/forensic) and cross-checks them against the fault-injection
// harness's live-state verdicts, failing loudly on any disagreement.
// It also renders the causal fault-propagation graph, the virtual-time
// profile, and — on the sharded engine — the per-shard instrumentation
// counters.
//
// Usage:
//
//	hivemort                      # audit the full default campaign (137 trials)
//	hivemort -trials 3            # 3 trials per scenario
//	hivemort -cells 16 -shards auto  # audit a sharded 16-cell campaign
//	hivemort -j 8                 # fan trials across 8 workers (same report at any -j)
//	hivemort -scenario 4 -trial 2 # full forensic report for one trial
//	hivemort -top 5               # top-5 span names per subsystem in profiles
//	hivemort -json -o mort.json   # machine-readable audit report
//	hivemort -sweep -points 220   # audit the seeded sweep grid (nightly artifact)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/forensic"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// trialAudit is one trial's cross-check: the harness verdict (live kernel
// state) next to the trace-derived verdict, compact enough to keep for
// every trial of a campaign (the event stream itself is dropped as soon
// as the forensic pass is done).
type trialAudit struct {
	Trial            int              `json:"trial"`
	Seed             int64            `json:"seed"`
	TargetCell       int              `json:"target_cell"`
	HarnessDetected  bool             `json:"harness_detected"`
	HarnessContained bool             `json:"harness_contained"`
	Audit            forensic.Verdict `json:"audit"`
	Agree            bool             `json:"agree"`
	Events           int              `json:"events"`
	DroppedEvents    uint64           `json:"dropped_events"`

	engine *sim.ClusterStats
}

// scenarioAudit aggregates one scenario's trials.
type scenarioAudit struct {
	Scenario      int          `json:"scenario"`
	Name          string       `json:"name"`
	Tests         int          `json:"tests"`
	Agree         int          `json:"agree"`
	Detected      int          `json:"detected"`
	Contained     int          `json:"contained"`
	Escapes       int          `json:"escapes"`
	Rejoins       int          `json:"rejoins"` // join-round commits seen in the traces
	Events        int64        `json:"events"`
	DroppedEvents uint64       `json:"dropped_events"`
	Trials        []trialAudit `json:"trials"`
}

// mortReport is the -json document. The worker-count and wall-clock
// fields ("jobs", "gomaxprocs", "shards", "total_wall_ms") are the only
// run-shape-dependent ones, named to match the shard-identity gate's
// strip pattern so gated diffs exclude exactly them.
type mortReport struct {
	Name              string          `json:"name"`
	GoVersion         string          `json:"go_version"`
	GOMAXPROCS        int             `json:"gomaxprocs"`
	Jobs              int             `json:"jobs"`
	TrialsPerScenario int             `json:"trials_per_scenario"`
	Cells             int             `json:"cells"`
	Shards            int             `json:"shards"`
	Scenarios         []scenarioAudit `json:"scenarios"`
	Trials            int             `json:"trials"`
	Agreements        int             `json:"agreements"`
	Disagreements     []string        `json:"disagreements"`
	AllAgree          bool            `json:"all_agree"`
	TotalWallMs       float64         `json:"total_wall_ms"`
}

func main() {
	var (
		trials   = flag.Int("trials", 0, "trials per scenario (0 = the default campaign counts)")
		cells    = flag.Int("cells", 4, "hive cell count (4 = the paper's machine)")
		scenario = flag.Int("scenario", -1, fmt.Sprintf("full forensic report for one scenario (0-%d)", faultinject.NumScenarios-1))
		trial    = flag.Int("trial", 0, "trial index for -scenario")
		topN     = flag.Int("top", 3, "top span names per subsystem in profiles")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "parallel trial workers (1 = sequential)")
		jsonOut  = flag.Bool("json", false, "emit the machine-readable audit report instead of the table")
		outPath  = flag.String("o", "", "write the -json report to a file instead of stdout")
		sweep    = flag.Bool("sweep", false, "audit a uniform (scenario × trial) grid instead of the default campaign")
		points   = flag.Int("points", 220, "with -sweep: minimum grid points to cover")
		shards   = flag.String("shards", "", "engine mode per trial: 0 = classic (default), N = sharded with N workers, auto = one worker per cell; verdicts are identical at every value")
	)
	flag.Parse()

	parallel.SetDefaultWorkers(*jobs)

	if *cells < 4 || *cells > core.MaxCells {
		fmt.Fprintf(os.Stderr, "hivemort: -cells %d: campaign needs 4..%d cells\n", *cells, core.MaxCells)
		os.Exit(2)
	}
	nshards, err := workload.ParseShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hivemort:", err)
		os.Exit(2)
	}
	if nshards == workload.ShardsAuto {
		nshards = workload.AutoShards(*cells)
	}
	opts := faultinject.TrialOpts{Cells: *cells, Shards: nshards, KeepEvents: true, TraceCap: 1 << 16}

	if *scenario >= 0 {
		os.Exit(runSingle(faultinject.Scenario(*scenario), *trial, opts, *topN))
	}

	start := time.Now()
	var rows []scenarioAudit
	for _, s := range faultinject.AllScenarios() {
		n := s.DefaultTests()
		if *sweep {
			n = (*points + faultinject.NumScenarios - 1) / faultinject.NumScenarios
		} else if *trials > 0 {
			n = *trials
		}
		rows = append(rows, auditScenario(s, n, opts))
	}

	total, agreements := 0, 0
	var disagreements []string
	var totalEvents int64
	var totalDropped uint64
	var engine *engineAgg
	for _, row := range rows {
		total += row.Tests
		agreements += row.Agree
		totalEvents += row.Events
		totalDropped += row.DroppedEvents
		for _, t := range row.Trials {
			if !t.Agree {
				disagreements = append(disagreements, fmt.Sprintf(
					"%s trial %d: harness detected=%v contained=%v, trace detected=%v contained=%v (%s)",
					row.Name, t.Trial, t.HarnessDetected, t.HarnessContained,
					t.Audit.Detected, t.Audit.Contained,
					strings.Join(t.Audit.Evidence, "; ")))
			}
			engine = engine.add(t.engine)
		}
	}
	allAgree := agreements == total

	if *jsonOut {
		report := &mortReport{
			Name:              "hivemort",
			GoVersion:         runtime.Version(),
			GOMAXPROCS:        runtime.GOMAXPROCS(0),
			Jobs:              parallel.Default().Workers(),
			TrialsPerScenario: *trials,
			Cells:             *cells,
			Shards:            nshards,
			Scenarios:         rows,
			Trials:            total,
			Agreements:        agreements,
			Disagreements:     disagreements,
			AllAgree:          allAgree,
			TotalWallMs:       float64(time.Since(start).Microseconds()) / 1000,
		}
		enc, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "hivemort: marshal report:", err)
			os.Exit(1)
		}
		enc = append(enc, '\n')
		if *outPath != "" {
			if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "hivemort: write report:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d trials, %.0f ms total)\n", *outPath, total, report.TotalWallMs)
		} else {
			os.Stdout.Write(enc)
		}
		if !allAgree {
			os.Exit(1)
		}
		return
	}

	// Text report. Deliberately free of worker counts and wall-clock so it
	// is byte-identical across -j and -shards.
	fmt.Printf("hivemort: audited %d trials across %d scenarios from the trace alone\n", total, len(rows))
	if totalDropped > 0 {
		fmt.Printf("WARNING: %d events dropped by ring truncation — some walks may be incomplete\n", totalDropped)
	} else {
		fmt.Printf("no ring truncation anywhere (%d events analyzed)\n", totalEvents)
	}
	fmt.Println()

	t := stats.NewTable("trace audit vs harness (per scenario)",
		"scenario", "trials", "agree", "detected", "contained", "escapes", "rejoins", "events", "dropped")
	for _, row := range rows {
		t.AddRow(row.Name,
			fmt.Sprintf("%d", row.Tests), fmt.Sprintf("%d", row.Agree),
			fmt.Sprintf("%d", row.Detected), fmt.Sprintf("%d", row.Contained),
			fmt.Sprintf("%d", row.Escapes), fmt.Sprintf("%d", row.Rejoins),
			fmt.Sprintf("%d", row.Events), fmt.Sprintf("%d", row.DroppedEvents))
	}
	fmt.Print(t.String())
	fmt.Println()

	// Rejoin section: the availability loop as re-derived from the traces
	// alone. A rejoined cell's later death must audit as a new fault, so
	// the agree column above already covers the attribution property; this
	// section surfaces how often the loop closed.
	if anyRejoins := func() bool {
		for _, row := range rows {
			if row.Rejoins > 0 {
				return true
			}
		}
		return false
	}(); anyRejoins {
		fmt.Println("availability loop (join-round commits seen in the traces):")
		for _, row := range rows {
			if !faultinject.Scenario(row.Scenario).RebootLoop() {
				continue
			}
			fmt.Printf("  %-48s %d trial(s), %d rejoin commit(s)\n",
				row.Name, row.Tests, row.Rejoins)
		}
		fmt.Println()
	}

	if engine != nil {
		fmt.Print(engine.format())
		fmt.Println()
	}

	exemplar := faultinject.AllScenarios()[0]
	fmt.Printf("exemplar forensics — %s, trial 0:\n\n", exemplar)
	tr := faultinject.RunTrialOpts(exemplar, 0, opts)
	fmt.Print(forensic.Analyze(tr.Events, tr.Dropped).Format(*topN))
	fmt.Println()

	if allAgree {
		fmt.Println("The trace-derived verdicts agree with the harness on every trial.")
	} else {
		for _, d := range disagreements {
			fmt.Fprintf(os.Stderr, "DISAGREEMENT %s\n", d)
		}
		fmt.Println("TRACE/HARNESS DISAGREEMENTS OCCURRED — see above.")
		os.Exit(1)
	}
}

// auditScenario runs a scenario's trials, auditing each inside its worker
// so the (large) event stream is dropped before the next trial's arrives.
func auditScenario(s faultinject.Scenario, tests int, opts faultinject.TrialOpts) scenarioAudit {
	trials := parallel.Map(parallel.Default(), tests, func(i int) trialAudit {
		tr := faultinject.RunTrialOpts(s, i, opts)
		rep := forensic.Analyze(tr.Events, tr.Dropped)
		ta := trialAudit{
			Trial:            i,
			Seed:             tr.Seed,
			TargetCell:       tr.TargetCell,
			HarnessDetected:  tr.Detected,
			HarnessContained: tr.Contained,
			Audit:            rep.Audit,
			Events:           len(tr.Events),
			engine:           tr.EngineStats,
		}
		for _, d := range tr.Dropped {
			ta.DroppedEvents += d.Total()
		}
		ta.Agree = ta.Audit.Detected == tr.Detected && ta.Audit.Contained == tr.Contained
		return ta
	})
	row := scenarioAudit{Scenario: int(s), Name: s.String(), Tests: tests, Trials: trials}
	for _, t := range trials {
		if t.Agree {
			row.Agree++
		}
		if t.Audit.Detected {
			row.Detected++
		}
		if t.Audit.Contained {
			row.Contained++
		}
		row.Escapes += len(t.Audit.Escapes)
		row.Rejoins += len(t.Audit.Rejoined)
		row.Events += int64(t.Events)
		row.DroppedEvents += t.DroppedEvents
	}
	return row
}

// runSingle prints the full forensic report for one trial and the
// harness cross-check; exit status 1 on disagreement.
func runSingle(s faultinject.Scenario, trial int, opts faultinject.TrialOpts, topN int) int {
	tr := faultinject.RunTrialOpts(s, trial, opts)
	rep := forensic.Analyze(tr.Events, tr.Dropped)
	fmt.Printf("%s trial %d (seed %d, target cell %d):\n\n", s, trial, tr.Seed, tr.TargetCell)
	fmt.Print(rep.Format(topN))
	fmt.Println()
	if tr.EngineStats != nil {
		var agg *engineAgg
		fmt.Print(agg.add(tr.EngineStats).format())
		fmt.Println()
	}
	agree := rep.Audit.Detected == tr.Detected && rep.Audit.Contained == tr.Contained
	fmt.Printf("harness: detected=%v contained=%v integrity=%v check=%v state=%v\n",
		tr.Detected, tr.Contained, tr.IntegrityOK, tr.CorrectRunOK, tr.StateOK)
	if tr.Notes != "" {
		fmt.Printf("harness notes: %s\n", tr.Notes)
	}
	if !agree {
		fmt.Printf("DISAGREEMENT: trace says detected=%v contained=%v\n",
			rep.Audit.Detected, rep.Audit.Contained)
		return 1
	}
	fmt.Println("trace and harness agree.")
	return 0
}

// engineAgg folds per-trial ClusterStats into campaign-wide per-shard
// totals. All inputs are deterministic per trial and folded in trial
// order, so the section is byte-identical across -j.
type engineAgg struct {
	trials    int
	windows   uint64
	lookahead sim.Time
	shards    []shardAgg
}

type shardAgg struct {
	active, dispatched, mailIn, mailOut, hops uint64
	maxHeap                                   int
}

func (a *engineAgg) add(st *sim.ClusterStats) *engineAgg {
	if st == nil {
		return a
	}
	if a == nil {
		a = &engineAgg{}
	}
	a.trials++
	a.windows += st.Windows
	a.lookahead = st.Lookahead
	for i, s := range st.Shards {
		for i >= len(a.shards) {
			a.shards = append(a.shards, shardAgg{})
		}
		sh := &a.shards[i]
		sh.active += s.ActiveWindows
		sh.dispatched += s.Dispatched
		sh.mailIn += s.MailIn
		sh.mailOut += s.MailOut
		sh.hops += s.Hops
		if s.MaxHeap > sh.maxHeap {
			sh.maxHeap = s.MaxHeap
		}
	}
	return a
}

func (a *engineAgg) format() string {
	if a == nil || a.windows == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sharded engine: %d trials, %d lookahead windows total, window %v\n",
		a.trials, a.windows, a.lookahead)
	t := stats.NewTable("per-shard engine counters (campaign totals)",
		"shard", "active", "idle-share", "dispatched", "mail-in", "mail-out", "hops", "max-heap")
	for i, sh := range a.shards {
		name := fmt.Sprintf("%d", i)
		if i == 0 {
			name = "0 (global)"
		}
		idle := 1 - float64(sh.active)/float64(a.windows)
		t.AddRow(name, fmt.Sprintf("%d", sh.active), fmt.Sprintf("%.1f%%", idle*100),
			fmt.Sprintf("%d", sh.dispatched), fmt.Sprintf("%d", sh.mailIn),
			fmt.Sprintf("%d", sh.mailOut), fmt.Sprintf("%d", sh.hops),
			fmt.Sprintf("%d", sh.maxHeap))
	}
	b.WriteString(t.String())
	return b.String()
}
