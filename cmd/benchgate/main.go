// Command benchgate compares a freshly generated hivebench report against
// the committed baseline and exits nonzero on any metric drift beyond the
// tolerance. It is the CI perf-regression gate:
//
//	go run ./cmd/hivebench -quick -json -o /tmp/bench.json
//	go run ./cmd/benchgate -baseline BENCH_hive.json -candidate /tmp/bench.json
//
// Only deterministic metrics are compared; wall-clock timings are ignored.
// After an intentional performance change, refresh the baseline with
// `make bench-report` and commit the new BENCH_hive.json.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/benchcmp"
)

func main() {
	baseline := flag.String("baseline", "BENCH_hive.json", "committed baseline report")
	candidate := flag.String("candidate", "", "freshly generated report to check")
	tol := flag.Float64("tol", 0.05, "relative drift tolerance (0.05 = 5%)")
	flag.Parse()

	if *candidate == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -candidate is required")
		os.Exit(2)
	}
	base, err := benchcmp.Load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}
	cand, err := benchcmp.Load(*candidate)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(2)
	}

	res := benchcmp.Compare(base, cand, *tol)
	for _, w := range res.Warnings {
		fmt.Println("warning:", w)
	}
	if !res.OK() {
		for _, f := range res.Failures {
			fmt.Println("FAIL:", f)
		}
		fmt.Printf("benchgate: %d of %d metrics regressed beyond ±%.1f%% "+
			"(intentional? refresh with `make bench-report` and commit)\n",
			len(res.Failures), res.Compared, *tol*100)
		os.Exit(1)
	}
	fmt.Printf("benchgate: OK — %d metrics within ±%.1f%% of %s\n",
		res.Compared, *tol*100, *baseline)
}
