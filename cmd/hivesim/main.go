// Command hivesim runs one of the paper's workloads on a chosen system
// configuration and prints timing and kernel statistics.
//
// Usage:
//
//	hivesim -workload pmake -cells 4
//	hivesim -workload ocean -irix
//	hivesim -workload raytrace -cells 2 -seed 7
//	hivesim -workload pmake -cells 4 -fail 1 -failat 2s
//	hivesim -cells 4 -fail 2 -trace out.json   # Chrome/Perfetto trace
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	hive "repro"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	var (
		wl     = flag.String("workload", "pmake", "pmake | ocean | raytrace")
		cells  = flag.Int("cells", 4, "number of cells (1, 2, or 4)")
		irix   = flag.Bool("irix", false, "run the IRIX 5.2 baseline instead of Hive")
		seed   = flag.Int64("seed", 1995, "simulation seed")
		fail   = flag.Int("fail", -1, "inject a fail-stop fault into this cell")
		failAt = flag.Duration("failat", 2*time.Second, "virtual time of the fault")
		stats  = flag.Bool("stats", false, "dump per-cell kernel counters")
		trace  = flag.String("trace", "", "write a Chrome trace-event JSON file (open in ui.perfetto.dev)")
		shards = flag.String("shards", "", "engine mode: 0 = classic (default), N = sharded with N workers, auto = one worker per cell; output is identical at every value")
	)
	flag.Parse()

	nshards, err := workload.ParseShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hivesim:", err)
		os.Exit(2)
	}
	workload.SetDefaultShards(nshards)

	var h *core.Hive
	name := fmt.Sprintf("hive-%dcell", *cells)
	if *irix {
		h = hive.BootIRIX()
		name = "IRIX"
	} else {
		h = workload.BootHiveWith(*cells, *seed, func(cfg *core.Config) {
			if *trace != "" {
				// Wide rings so a full workload's spans survive to export.
				cfg.TraceCap = 1 << 16
			}
		})
	}

	if *fail >= 0 {
		if *fail >= len(h.Cells) {
			fmt.Fprintf(os.Stderr, "no cell %d\n", *fail)
			os.Exit(2)
		}
		h.Eng.At(sim.Time(failAt.Nanoseconds()), func() {
			fmt.Printf("[%v] injecting fail-stop fault into cell %d\n", h.Now(), *fail)
			h.Cells[*fail].FailHardware()
		})
	}

	var res *workload.Result
	switch *wl {
	case "pmake":
		res = workload.RunPmake(h, workload.DefaultPmake(), 120*sim.Second)
	case "ocean":
		res = workload.RunOcean(h, workload.DefaultOcean(), 120*sim.Second)
	case "raytrace":
		res = workload.RunRaytrace(h, workload.DefaultRaytrace(), 120*sim.Second)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wl)
		os.Exit(2)
	}

	fmt.Printf("%s on %s: elapsed %.3fs (virtual), done=%v\n",
		res.Name, name, res.Elapsed.Seconds(), res.Done)
	fmt.Printf("  page-cache faults: %d (%d remote)\n", res.FaultHits, res.RemoteFaults)
	for _, e := range res.Errors {
		fmt.Printf("  error: %s\n", e)
	}
	if bad, report := workload.VerifyOutputs(h, res); bad > 0 {
		fmt.Printf("  DATA INTEGRITY VIOLATIONS: %d\n", bad)
		for _, r := range report {
			fmt.Printf("    %s\n", r)
		}
	} else if len(res.Outputs) > 0 {
		fmt.Printf("  outputs verified: no data integrity violations\n")
	}
	if *fail >= 0 {
		fmt.Printf("  live cells after fault: %d of %d\n", h.Coord.LiveCount(), len(h.Cells))
		if h.Coord.LastDetectAt > 0 {
			fmt.Printf("  last cell entered recovery %.1f ms after injection\n",
				(h.Coord.LastDetectAt - sim.Time(failAt.Nanoseconds())).Millis())
		}
	}
	if *stats {
		for _, c := range h.Cells {
			fmt.Printf("cell %d counters:\n%s", c.ID, c.VM.Metrics.Snapshot())
			fmt.Print(c.EP.Metrics.Snapshot())
			fmt.Print(c.FS.Metrics.Snapshot())
		}
	}
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hivesim: %v\n", err)
			os.Exit(1)
		}
		if err := h.Trace.ExportChrome(f); err != nil {
			fmt.Fprintf(os.Stderr, "hivesim: export trace: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("  trace written to %s (load in ui.perfetto.dev or chrome://tracing)\n", *trace)
	}
}
