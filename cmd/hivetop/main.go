// Command hivetop runs a workload and prints a virtual-time dashboard —
// per-cell snapshots of processes, memory pools, sharing state, and RPC
// traffic; the detection→alert→barrier1→barrier2→resume recovery timeline
// when a fault is injected; and the top latency histograms per cell. It is
// the operator's view of a running Hive.
//
// Usage:
//
//	hivetop                        # pmake on 4 cells, snapshot every 1s
//	hivetop -interval 500ms -fail 2 -failat 3s
//	hivetop -fail 2 -hist 3 -tail 20 -trace top.json
//	hivetop -fail 2 -forensic      # propagation graph + virtual-time profile
//	hivetop -fail 2 -reboot        # availability loop: reboot, rejoin, restore
//	hivetop -shards auto -trace top.json  # sharded engine, with counter tracks
//	hivetop -frontend              # open-loop multi-tenant frontend + SLO view
//	hivetop -frontend -fail 1 -reboot     # kill a cell mid-surge, watch the window
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/forensic"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/wax"
	"repro/internal/workload"
)

func main() {
	var (
		cells      = flag.Int("cells", 4, "number of cells")
		interval   = flag.Duration("interval", time.Second, "virtual snapshot period")
		fail       = flag.Int("fail", -1, "inject a fail-stop fault into this cell")
		failAt     = flag.Duration("failat", 3*time.Second, "virtual fault time")
		seed       = flag.Int64("seed", 1995, "simulation seed")
		histRows   = flag.Int("hist", 3, "bucket rows per latency histogram (0 = none)")
		tailN      = flag.Int("tail", 12, "forensic trace tail length (0 = none)")
		tracePath  = flag.String("trace", "", "also write the Chrome trace-event JSON file")
		forensicOn = flag.Bool("forensic", false, "print the fault-propagation graph and virtual-time profile (implied by -fail)")
		reboot     = flag.Bool("reboot", false, "run the availability loop: reboot the failed cell, rejoin it, restore full capacity")
		topN       = flag.Int("top", 3, "top span names per subsystem in the -forensic profile")
		shards     = flag.String("shards", "", "engine mode: 0 = classic (default), N = sharded with N workers, auto = one worker per cell")
		frontend   = flag.Bool("frontend", false, "run the open-loop multi-tenant frontend instead of pmake, with an SLO view")
	)
	flag.Parse()

	nshards, err := workload.ParseShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hivetop:", err)
		os.Exit(2)
	}
	workload.SetDefaultShards(nshards)

	h := workload.BootHiveWith(*cells, *seed, func(cfg *core.Config) {
		if *tracePath != "" || *forensicOn || *fail >= 0 {
			cfg.TraceCap = 1 << 16
		}
		if *reboot {
			cfg.Reboot = core.RebootPolicy{Enabled: true}
		}
	})
	if *fail >= 0 && *fail < len(h.Cells) {
		h.Eng.At(sim.Time(failAt.Nanoseconds()), func() {
			h.Cells[*fail].FailHardware()
		})
	}

	// Periodic snapshots, printed as the simulation advances.
	var snap func()
	snap = func() {
		printSnapshot(h)
		h.Eng.After(sim.Time(interval.Nanoseconds()), snap)
	}
	h.Eng.After(sim.Time(interval.Nanoseconds()), snap)

	var (
		resName    string
		resDone    bool
		resElapsed sim.Time
		fe         *workload.FrontendResult
	)
	if *frontend {
		sup := wax.Supervise(h)
		var wl *workload.Result
		wl, fe = workload.RunFrontend(h, workload.DefaultFrontend(), 60*sim.Second)
		resName, resDone, resElapsed = wl.Name, wl.Done, wl.Elapsed
		sup.Stop()
	} else {
		res := workload.RunPmake(h, workload.DefaultPmake(), 60*sim.Second)
		resName, resDone, resElapsed = res.Name, res.Done, res.Elapsed
	}
	if *reboot && h.Rebooter != nil {
		// The workload driver stops once pmake settles; keep the clock
		// running until the availability loop does too (rejoin committed,
		// or the crash-loop bound reached).
		h.RunUntil(func() bool {
			return h.Rebooter.Idle() && h.Coord.RecoveryIdle()
		}, h.Now()+15*sim.Second)
	}
	printSnapshot(h)
	fmt.Printf("\nworkload %s finished: done=%v elapsed=%.3fs\n",
		resName, resDone, resElapsed.Seconds())
	if fe != nil {
		printFrontendSLO(fe)
	}

	if *fail >= 0 {
		printRecoveryTimeline(h)
	}
	if dropped := h.Trace.TotalDropped(); dropped > 0 {
		fmt.Printf("\nWARNING: %d trace events dropped by ring truncation:\n", dropped)
		for _, d := range h.Trace.Dropped() {
			if d.Total() > 0 {
				fmt.Printf("  cell %d: %d control + %d data\n", d.Cell, d.Control, d.Data)
			}
		}
		fmt.Println("  (forensic walks and trace tails may be incomplete; raise TraceCap)")
	}
	if *forensicOn || *fail >= 0 {
		fmt.Println("\nforensics:")
		rep := forensic.Analyze(h.Trace.Merged(), h.Trace.Dropped())
		fmt.Print(rep.Format(*topN))
	}
	if *histRows > 0 {
		printHistograms(h, *histRows)
	}
	if *tailN > 0 {
		fmt.Printf("\nforensic event trace (last %d events):\n", *tailN)
		for _, e := range h.Trace.Tail(*tailN) {
			fmt.Printf("  %s\n", e)
		}
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hivetop: %v\n", err)
			os.Exit(1)
		}
		var tracks []trace.CounterTrack
		if h.Clu != nil {
			tracks = trace.EngineCounterTracks(h.Clu.Stats())
		}
		if err := h.Trace.ExportChromeWith(f, tracks); err != nil {
			fmt.Fprintf(os.Stderr, "hivetop: export trace: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("\ntrace written to %s (load in ui.perfetto.dev)\n", *tracePath)
	}
}

func printSnapshot(h *core.Hive) {
	tb := stats.NewTable(fmt.Sprintf("t=%v", h.Now()),
		"cell", "state", "procs", "free pages", "borrowed", "loaned", "rw pages", "rpc calls", "intr served")
	for _, c := range h.Cells {
		state := "up"
		if c.Failed() {
			state = "DOWN"
		}
		tb.AddRow(
			fmt.Sprint(c.ID), state,
			fmt.Sprint(c.Procs.Live()),
			fmt.Sprint(c.VM.FreePages()),
			fmt.Sprint(c.VM.BorrowedFrames()),
			fmt.Sprint(c.VM.LoanedFrames()),
			fmt.Sprint(c.VM.RemotelyWritablePages()),
			fmt.Sprint(c.EP.Metrics.Counter("rpc.calls").Value()),
			fmt.Sprint(c.EP.Metrics.Counter("rpc.intr_served").Value()),
		)
	}
	fmt.Println(tb)
}

// printRecoveryTimeline reconstructs the detection→alert→barrier1→barrier2
// →resume sequence from the structured trace, per cell, in virtual time.
// With the availability loop on, the same view continues through the
// reboot and join:* phases and ends with the capacity-restored marker.
func printRecoveryTimeline(h *core.Hive) {
	type phase struct {
		cell  int
		name  string
		begin sim.Time
		end   sim.Time
		open  bool
	}
	timelinePhase := func(name string) bool {
		return strings.HasPrefix(name, "recovery:") || strings.HasPrefix(name, "join:")
	}
	var phases []phase
	openIdx := map[string]int{} // "cell:name" -> phases index
	fmt.Println("\nrecovery timeline (virtual time):")
	for _, e := range h.Trace.Merged() {
		switch e.Kind {
		case trace.Hint, trace.Alert, trace.Panic:
			fmt.Printf("  %10.3f ms  cell %d  %s\n", e.At.Millis(), e.Cell, e.Detail())
		case trace.Vote:
			fmt.Printf("  %10.3f ms  cell %d  %s\n", e.At.Millis(), e.Cell, e.Detail())
		case trace.Reboot:
			fmt.Printf("  %10.3f ms  cell %d  REBOOT attempt %d: %s\n",
				e.At.Millis(), e.A, e.B, e.S)
		case trace.Rejoin:
			fmt.Printf("  %10.3f ms  cell %d  REJOIN committed (join round led by cell %d)\n",
				e.At.Millis(), e.A, e.B)
		case trace.PhaseBegin:
			if timelinePhase(e.S) {
				key := fmt.Sprintf("%d:%s", e.Cell, e.S)
				openIdx[key] = len(phases)
				phases = append(phases, phase{cell: e.Cell, name: e.S, begin: e.At, open: true})
			}
		case trace.PhaseEnd:
			if timelinePhase(e.S) {
				key := fmt.Sprintf("%d:%s", e.Cell, e.S)
				if i, ok := openIdx[key]; ok && phases[i].open {
					phases[i].end = e.At
					phases[i].open = false
					fmt.Printf("  %10.3f ms  cell %d  %-18s %8.3f ms\n",
						phases[i].begin.Millis(), e.Cell, e.S,
						(e.At - phases[i].begin).Millis())
				}
			}
		}
	}
	for _, p := range phases {
		if p.open {
			fmt.Printf("  %10.3f ms  cell %d  %-18s (unfinished)\n",
				p.begin.Millis(), p.cell, p.name)
		}
	}
	if len(phases) == 0 {
		fmt.Println("  (no recovery phases recorded)")
	}
	if rb := h.Rebooter; rb != nil {
		if rb.FullCapacityAt > 0 {
			fmt.Printf("  %10.3f ms  ── FULL CAPACITY RESTORED (%d/%d cells live) ──\n",
				rb.FullCapacityAt.Millis(), h.Coord.LiveCount(), len(h.Cells))
		}
		for _, rec := range rb.Records {
			if rec.Restored() {
				fmt.Printf("  cell %d restored in %.3f ms (death verdict → join commit, %d attempt(s))\n",
					rec.Cell, (rec.RejoinAt - rec.DeadAt).Millis(), rec.Attempts)
			} else if rec.GaveUp {
				fmt.Printf("  cell %d NOT restored: gave up after %d attempt(s)\n",
					rec.Cell, rec.Attempts)
			}
		}
	}
}

// printFrontendSLO is the operator's SLO view of a frontend run: the
// aggregate counters and latency quantiles, the availability window if
// the run rode through a fault, and the busiest tenants of the Zipf mix.
func printFrontendSLO(fe *workload.FrontendResult) {
	fmt.Println("\nfrontend SLO view:")
	fmt.Printf("  offered %d (%.0f/s)  issued %d  shed %d  completed %d  lost %d\n",
		fe.Offered, fe.OfferedPerSec, fe.Issued, fe.Shed, fe.Completed, fe.Lost)
	fmt.Printf("  throughput %.0f/s  goodput %.0f/s (%d jobs within SLO)\n",
		fe.ThroughputPerSec, fe.GoodputPerSec, fe.Good)
	fmt.Printf("  latency p50 %.1fµs  p99 %.1fµs  p999 %.1fµs  max %.1fµs\n",
		fe.Latency.P50, fe.Latency.P99, fe.Latency.P999, fe.Latency.Max)
	if fe.Degraded > 0 || fe.ErrWindowMs > 0 {
		fmt.Printf("  degraded arrivals %d  user-visible window %.1fms\n",
			fe.Degraded, fe.ErrWindowMs)
	}
	tb := stats.NewTable("busiest tenants", "tenant", "issued", "done", "done %")
	type trow struct {
		id     int
		issued int64
		done   int64
	}
	rows := make([]trow, len(fe.TenantIssued))
	for i := range fe.TenantIssued {
		rows[i] = trow{i, fe.TenantIssued[i], fe.TenantDone[i]}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].issued != rows[j].issued {
			return rows[i].issued > rows[j].issued
		}
		return rows[i].id < rows[j].id
	})
	for i, r := range rows {
		if i == 8 || r.issued == 0 {
			break
		}
		pct := 0.0
		if r.issued > 0 {
			pct = 100 * float64(r.done) / float64(r.issued)
		}
		tb.AddRow(fmt.Sprint(r.id), fmt.Sprint(r.issued), fmt.Sprint(r.done),
			fmt.Sprintf("%.1f%%", pct))
	}
	fmt.Println(tb)
}

// printHistograms shows each cell's top latency distributions.
func printHistograms(h *core.Hive, rows int) {
	fmt.Println("\nlatency histograms (µs):")
	for _, c := range h.Cells {
		for _, src := range []struct {
			reg  *stats.Registry
			name string
		}{
			{c.EP.Metrics, "rpc.call_us"},
			{c.VM.Metrics, "vm.fault_us"},
		} {
			hist := src.reg.Hist(src.name)
			if hist.N() == 0 {
				continue
			}
			fmt.Printf("cell %d %s:\n%s", c.ID, src.name, hist.Snapshot().Format(rows))
		}
	}
}
