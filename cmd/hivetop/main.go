// Command hivetop runs a workload and prints periodic system snapshots —
// per-cell processes, memory pools, sharing state, and RPC traffic — plus
// the forensic event trace when a fault is injected. It is the operator's
// view of a running Hive.
//
// Usage:
//
//	hivetop                        # pmake on 4 cells, snapshot every 1s
//	hivetop -interval 500ms -fail 2 -failat 3s
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	var (
		cells    = flag.Int("cells", 4, "number of cells")
		interval = flag.Duration("interval", time.Second, "virtual snapshot period")
		fail     = flag.Int("fail", -1, "inject a fail-stop fault into this cell")
		failAt   = flag.Duration("failat", 3*time.Second, "virtual fault time")
		seed     = flag.Int64("seed", 1995, "simulation seed")
	)
	flag.Parse()

	h := workload.BootHiveSeeded(*cells, *seed)
	if *fail >= 0 && *fail < len(h.Cells) {
		h.Eng.At(sim.Time(failAt.Nanoseconds()), func() {
			h.Cells[*fail].FailHardware()
		})
	}

	// Periodic snapshots, printed as the simulation advances.
	var snap func()
	snap = func() {
		printSnapshot(h)
		h.Eng.After(sim.Time(interval.Nanoseconds()), snap)
	}
	h.Eng.After(sim.Time(interval.Nanoseconds()), snap)

	res := workload.RunPmake(h, workload.DefaultPmake(), 60*sim.Second)
	printSnapshot(h)
	fmt.Printf("\nworkload %s finished: done=%v elapsed=%.3fs\n",
		res.Name, res.Done, res.Elapsed.Seconds())

	if *fail >= 0 {
		fmt.Println("\nforensic event trace:")
		fmt.Print(h.Trace.Dump())
	}
}

func printSnapshot(h *core.Hive) {
	tb := stats.NewTable(fmt.Sprintf("t=%v", h.Now()),
		"cell", "state", "procs", "free pages", "borrowed", "loaned", "rw pages", "rpc calls", "intr served")
	for _, c := range h.Cells {
		state := "up"
		if c.Failed() {
			state = "DOWN"
		}
		tb.AddRow(
			fmt.Sprint(c.ID), state,
			fmt.Sprint(c.Procs.Live()),
			fmt.Sprint(c.VM.FreePages()),
			fmt.Sprint(c.VM.BorrowedFrames()),
			fmt.Sprint(c.VM.LoanedFrames()),
			fmt.Sprint(c.VM.RemotelyWritablePages()),
			fmt.Sprint(c.EP.Metrics.Counter("rpc.calls").Value()),
			fmt.Sprint(c.EP.Metrics.Counter("rpc.intr_served").Value()),
		)
	}
	fmt.Println(tb)
}
