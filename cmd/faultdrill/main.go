// Command faultdrill runs the fault-injection campaign: the paper's §7.4
// rows — 49 fail-stop hardware faults and 20 kernel data corruptions
// (Table 7.4) — plus the v2 adversarial extensions that attack the recovery
// substrate itself (message drop/duplicate/corrupt, double faults,
// coordinator death mid-round, fault storms). It reports containment and
// detection latency per scenario.
//
// Usage:
//
//	faultdrill            # the full campaign, paper rows + extensions
//	faultdrill -trials 3  # 3 trials per scenario
//	faultdrill -cells 16  # campaign on a 16-cell hive (default 4, the paper's)
//	faultdrill -j 8       # fan trials across 8 workers (same results at any -j)
//	faultdrill -json -o drill.json       # machine-readable campaign report
//	faultdrill -scenario 4 -trial 2 -v   # one specific trial, verbose
//	faultdrill -scenario 2 -trial 0 -trace out.json  # Perfetto trace of one trial
//	faultdrill -sweep                    # seeded grid sweep with failure minimization
//	faultdrill -sweep -points 220        # at least 220 (scenario × trial) grid points
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/harness"
	"repro/internal/parallel"
	"repro/internal/workload"
)

// campaignReport is the -json document, shaped like hivebench's report so
// one tool chain can consume both.
type campaignReport struct {
	Name              string                     `json:"name"`
	GoVersion         string                     `json:"go_version"`
	GOMAXPROCS        int                        `json:"gomaxprocs"`
	Jobs              int                        `json:"jobs"`
	TrialsPerScenario int                        `json:"trials_per_scenario"` // 0 = the paper's counts
	Cells             int                        `json:"cells"`
	Shards            int                        `json:"shards"` // engine workers per trial (0 = classic)
	Scenarios         []*faultinject.CampaignRow `json:"scenarios"`
	AllOK             bool                       `json:"all_ok"`
	TotalWallMs       float64                    `json:"total_wall_ms"`
}

func main() {
	var (
		trials    = flag.Int("trials", 0, "trials per scenario (0 = the default campaign counts)")
		cells     = flag.Int("cells", 4, "hive cell count for the campaign (4 = the paper's machine)")
		scenario  = flag.Int("scenario", -1, fmt.Sprintf("run only this scenario (0-%d)", faultinject.NumScenarios-1))
		trial     = flag.Int("trial", 0, "trial index for -scenario")
		verbose   = flag.Bool("v", false, "per-trial detail")
		jobs      = flag.Int("j", runtime.GOMAXPROCS(0), "parallel trial workers (1 = sequential)")
		jsonOut   = flag.Bool("json", false, "emit a machine-readable campaign report instead of the table")
		outPath   = flag.String("o", "", "write the -json report to a file instead of stdout")
		tracePath = flag.String("trace", "", "with -scenario: write the trial's Chrome trace-event JSON here")
		sweep     = flag.Bool("sweep", false, "run the seeded (scenario × trial) grid sweep with failure minimization")
		points    = flag.Int("points", 220, "with -sweep: minimum grid points to cover")
		shards    = flag.String("shards", "", "engine mode per trial: 0 = classic (default), N = sharded with N workers, auto = one worker per cell; results are identical at every value")
	)
	flag.Parse()

	parallel.SetDefaultWorkers(*jobs)

	if *cells < 4 || *cells > core.MaxCells {
		fmt.Fprintf(os.Stderr, "faultdrill: -cells %d: campaign needs 4..%d cells\n", *cells, core.MaxCells)
		os.Exit(2)
	}

	nshards, err := workload.ParseShards(*shards)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultdrill:", err)
		os.Exit(2)
	}
	if nshards == workload.ShardsAuto {
		nshards = workload.AutoShards(*cells)
	}

	if *sweep {
		per := (*points + faultinject.NumScenarios - 1) / faultinject.NumScenarios
		rep := faultinject.Sweep(faultinject.SweepOpts{TrialsPer: per, Shards: nshards})
		fmt.Print(rep.Format())
		if !rep.AllOK() {
			os.Exit(1)
		}
		return
	}

	if *scenario >= 0 {
		s := faultinject.Scenario(*scenario)
		opts := faultinject.TrialOpts{Cells: *cells, Shards: nshards}
		if *tracePath != "" {
			opts.KeepTrace = true
			opts.TraceCap = 1 << 16
		}
		tr := faultinject.RunTrialOpts(s, *trial, opts)
		fmt.Printf("%s trial %d:\n", s, *trial)
		fmt.Printf("  injected at %v into cell %d\n", tr.InjectedAt, tr.TargetCell)
		fmt.Printf("  detected=%v (%.1f ms to last cell in recovery)\n", tr.Detected, tr.DetectMs)
		fmt.Printf("  recovery %.1f ms\n", tr.RecoveryMs)
		fmt.Printf("  contained=%v integrity=%v correctness-check=%v\n",
			tr.Contained, tr.IntegrityOK, tr.CorrectRunOK)
		if tr.Notes != "" {
			fmt.Printf("  notes: %s\n", tr.Notes)
		}
		if *tracePath != "" {
			if err := os.WriteFile(*tracePath, tr.TraceJSON, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "faultdrill: write trace:", err)
				os.Exit(1)
			}
			fmt.Printf("  trace written to %s (load in ui.perfetto.dev)\n", *tracePath)
		}
		if !tr.OK() {
			os.Exit(1)
		}
		return
	}

	scenarios := faultinject.AllScenarios()
	start := time.Now()
	var rows []*harness.Table74Row
	allOK := true
	for _, s := range scenarios {
		n := s.DefaultTests()
		if *trials > 0 {
			n = *trials
		}
		row := faultinject.RunScenarioOptsWith(parallel.Default(), s, n,
			faultinject.TrialOpts{Cells: *cells, Shards: nshards})
		rows = append(rows, row)
		if !row.AllOK {
			allOK = false
			for _, f := range row.Failures {
				fmt.Fprintf(os.Stderr, "FAILURE %s: %s\n", s, f)
			}
		}
		if *verbose && !*jsonOut {
			fmt.Printf("%s: %d tests, contained=%v, detect avg %.1f / p99 %.1f / max %.1f ms\n",
				s, row.Tests, row.AllOK, row.AvgDetect, row.P99Detect, row.MaxDetect)
		}
	}

	if *jsonOut {
		report := &campaignReport{
			Name:              "faultdrill",
			GoVersion:         runtime.Version(),
			GOMAXPROCS:        runtime.GOMAXPROCS(0),
			Jobs:              parallel.Default().Workers(),
			TrialsPerScenario: *trials,
			Cells:             *cells,
			Shards:            nshards,
			Scenarios:         rows,
			AllOK:             allOK,
			TotalWallMs:       float64(time.Since(start).Microseconds()) / 1000,
		}
		enc, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultdrill: marshal report:", err)
			os.Exit(1)
		}
		enc = append(enc, '\n')
		if *outPath != "" {
			if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "faultdrill: write report:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %s (%d scenarios, %.0f ms total)\n",
				*outPath, len(report.Scenarios), report.TotalWallMs)
		} else {
			os.Stdout.Write(enc)
		}
		if !allOK {
			os.Exit(1)
		}
		return
	}

	fmt.Println(harness.FormatTable74(rows))
	if allOK {
		fmt.Println("The effects of the fault were contained to the injected cell in every test.")
	} else {
		fmt.Println("CONTAINMENT FAILURES OCCURRED — see above.")
		os.Exit(1)
	}
}
