// Command faultdrill runs the §7.4 fault-injection campaign — 49 fail-stop
// hardware faults and 20 kernel data corruptions — and reports containment
// and detection latency per scenario (Table 7.4).
//
// Usage:
//
//	faultdrill            # the full 69-trial campaign
//	faultdrill -trials 3  # 3 trials per scenario
//	faultdrill -j 8       # fan trials across 8 workers (same results at any -j)
//	faultdrill -scenario 4 -trial 2 -v   # one specific trial, verbose
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"repro/internal/faultinject"
	"repro/internal/harness"
	"repro/internal/parallel"
)

func main() {
	var (
		trials   = flag.Int("trials", 0, "trials per scenario (0 = the paper's counts)")
		scenario = flag.Int("scenario", -1, "run only this scenario (0-4)")
		trial    = flag.Int("trial", 0, "trial index for -scenario")
		verbose  = flag.Bool("v", false, "per-trial detail")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "parallel trial workers (1 = sequential)")
	)
	flag.Parse()

	parallel.SetDefaultWorkers(*jobs)

	if *scenario >= 0 {
		s := faultinject.Scenario(*scenario)
		tr := faultinject.RunTrial(s, *trial)
		fmt.Printf("%s trial %d:\n", s, *trial)
		fmt.Printf("  injected at %v into cell %d\n", tr.InjectedAt, tr.TargetCell)
		fmt.Printf("  detected=%v (%.1f ms to last cell in recovery)\n", tr.Detected, tr.DetectMs)
		fmt.Printf("  recovery %.1f ms\n", tr.RecoveryMs)
		fmt.Printf("  contained=%v integrity=%v correctness-check=%v\n",
			tr.Contained, tr.IntegrityOK, tr.CorrectRunOK)
		if tr.Notes != "" {
			fmt.Printf("  notes: %s\n", tr.Notes)
		}
		if !tr.OK() {
			os.Exit(1)
		}
		return
	}

	scenarios := []faultinject.Scenario{
		faultinject.NodeFailProcCreate,
		faultinject.NodeFailCOWSearch,
		faultinject.NodeFailRandom,
		faultinject.CorruptAddrMap,
		faultinject.CorruptCOWTree,
	}
	var rows []*harness.Table74Row
	allOK := true
	for _, s := range scenarios {
		n := s.PaperTests()
		if *trials > 0 {
			n = *trials
		}
		row := faultinject.RunScenario(s, n)
		rows = append(rows, row)
		if !row.AllOK {
			allOK = false
			for _, f := range row.Failures {
				fmt.Printf("FAILURE %s: %s\n", s, f)
			}
		}
		if *verbose {
			fmt.Printf("%s: %d tests, contained=%v, detect avg %.1f / max %.1f ms\n",
				s, row.Tests, row.AllOK, row.AvgDetect, row.MaxDetect)
		}
	}
	fmt.Println(harness.FormatTable74(rows))
	if allOK {
		fmt.Println("The effects of the fault were contained to the injected cell in every test.")
	} else {
		fmt.Println("CONTAINMENT FAILURES OCCURRED — see above.")
		os.Exit(1)
	}
}
