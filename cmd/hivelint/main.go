// Command hivelint runs the determinism & fault-containment
// static-analysis suite (internal/lint) over the module's own source.
//
// Usage:
//
//	hivelint              # lint the whole module (root found from cwd)
//	hivelint -C path/to/repo
//	hivelint ./internal/vm ./internal/wax
//	hivelint -json        # machine-readable diagnostics
//	hivelint -list        # show the analyzers and the layer table
//	hivelint -unused-pragmas=false   # tolerate stale //hive:lint-ignore
//	hivelint -budget 30s  # fail if the lint run itself takes longer
//
// Exit status: 0 clean, 1 diagnostics reported (or budget exceeded),
// 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/lint"
)

func main() {
	var (
		root       = flag.String("C", "", "module root (default: walk up from the working directory)")
		jsonOut    = flag.Bool("json", false, "emit diagnostics as JSON")
		listOnly   = flag.Bool("list", false, "list analyzers and the layering table, then exit")
		unusedFlag = flag.Bool("unused-pragmas", true, "report //hive:lint-ignore pragmas that suppress nothing (full-module runs only)")
		budget     = flag.Duration("budget", 0, "fail when the lint run exceeds this wall time (0 disables; the suite must stay fast enough for the tier-1 gate)")
	)
	flag.Parse()

	cfg := lint.DefaultConfig()
	if *listOnly {
		analyzers := lint.Analyzers()
		sort.SliceStable(analyzers, func(i, j int) bool { return analyzers[i].Name < analyzers[j].Name })
		for _, a := range analyzers {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		fmt.Println("\nlayering ranks (imports must flow strictly downward):")
		for _, row := range lint.LayerTable(cfg) {
			fmt.Println("  " + row)
		}
		return
	}

	if *root == "" {
		cwd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		*root = lint.FindModuleRoot(cwd)
		if *root == "" {
			fatal(fmt.Errorf("no go.mod for module %s above the working directory; use -C", cfg.ModulePath))
		}
	}

	start := time.Now()
	m, err := lint.LoadModule(*root, cfg)
	if err != nil {
		fatal(err)
	}

	var res *lint.Result
	if args := flag.Args(); len(args) > 0 {
		res = &lint.Result{}
		for _, arg := range args {
			dir := arg
			if !filepath.IsAbs(dir) {
				dir = filepath.Join(*root, arg)
			}
			pkg, err := m.LoadPackage(dir)
			if err != nil {
				fatal(err)
			}
			res.Diagnostics = append(res.Diagnostics, lint.RunAnalyzers(pkg, cfg, lint.Analyzers())...)
			res.Pragmas = append(res.Pragmas, pkg.Pragmas()...)
		}
		lint.SortDiagnostics(res.Diagnostics)
	} else {
		res, err = m.Lint(nil)
		if err != nil {
			fatal(err)
		}
	}
	if !*unusedFlag {
		res.Diagnostics = dropUnusedPragmaDiags(res.Diagnostics)
	}
	elapsed := time.Since(start)

	if *jsonOut {
		report := struct {
			Module      string            `json:"module"`
			Analyzers   []string          `json:"analyzers"`
			Diagnostics []lint.Diagnostic `json:"diagnostics"`
			Pragmas     []lint.PragmaUse  `json:"pragmas"`
		}{cfg.ModulePath, lint.AnalyzerNames(), relativize(res.Diagnostics, *root), relativizePragmas(res.Pragmas, *root)}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range relativize(res.Diagnostics, *root) {
			fmt.Println(d)
		}
		if len(res.Diagnostics) == 0 {
			fmt.Printf("hivelint: %d analyzers, 0 diagnostics, %d ignore pragmas\n",
				len(lint.Analyzers()), len(res.Pragmas))
		}
	}
	overBudget := *budget > 0 && elapsed > *budget
	if overBudget {
		fmt.Fprintf(os.Stderr, "hivelint: lint run took %v, over the %v budget; the suite must stay cheap enough to run inside the tier-1 gate\n",
			elapsed.Round(time.Millisecond), *budget)
	}
	if len(res.Diagnostics) > 0 || overBudget {
		os.Exit(1)
	}
}

// dropUnusedPragmaDiags filters the unused-pragma reports, keeping every
// real analyzer diagnostic (-unused-pragmas=false).
func dropUnusedPragmaDiags(diags []lint.Diagnostic) []lint.Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "unused-pragma" {
			out = append(out, d)
		}
	}
	return out
}

// relativize rewrites absolute file names relative to the module root
// so output is stable across checkouts (and diffable in CI logs).
func relativize(diags []lint.Diagnostic, root string) []lint.Diagnostic {
	out := make([]lint.Diagnostic, len(diags))
	for i, d := range diags {
		if rel, err := filepath.Rel(root, d.File); err == nil {
			d.File = rel
		}
		out[i] = d
	}
	return out
}

func relativizePragmas(pragmas []lint.PragmaUse, root string) []lint.PragmaUse {
	out := make([]lint.PragmaUse, len(pragmas))
	for i, p := range pragmas {
		if rel, err := filepath.Rel(root, p.File); err == nil {
			p.File = rel
		}
		out[i] = p
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hivelint: "+err.Error())
	os.Exit(2)
}
