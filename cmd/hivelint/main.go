// Command hivelint runs the determinism & layering static-analysis
// suite (internal/lint) over the module's own source.
//
// Usage:
//
//	hivelint              # lint the whole module (root found from cwd)
//	hivelint -C path/to/repo
//	hivelint ./internal/vm ./internal/wax
//	hivelint -json        # machine-readable diagnostics
//	hivelint -list        # show the analyzers and the layer table
//
// Exit status: 0 clean, 1 diagnostics reported, 2 usage or load error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	var (
		root     = flag.String("C", "", "module root (default: walk up from the working directory)")
		jsonOut  = flag.Bool("json", false, "emit diagnostics as JSON")
		listOnly = flag.Bool("list", false, "list analyzers and the layering table, then exit")
	)
	flag.Parse()

	cfg := lint.DefaultConfig()
	if *listOnly {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-11s %s\n", a.Name, a.Doc)
		}
		fmt.Println("\nlayering ranks (imports must flow strictly downward):")
		for _, row := range lint.LayerTable(cfg) {
			fmt.Println("  " + row)
		}
		return
	}

	if *root == "" {
		cwd, err := os.Getwd()
		if err != nil {
			fatal(err)
		}
		*root = lint.FindModuleRoot(cwd)
		if *root == "" {
			fatal(fmt.Errorf("no go.mod for module %s above the working directory; use -C", cfg.ModulePath))
		}
	}

	m, err := lint.LoadModule(*root, cfg)
	if err != nil {
		fatal(err)
	}

	var res *lint.Result
	if args := flag.Args(); len(args) > 0 {
		res = &lint.Result{}
		for _, arg := range args {
			dir := arg
			if !filepath.IsAbs(dir) {
				dir = filepath.Join(*root, arg)
			}
			pkg, err := m.LoadPackage(dir)
			if err != nil {
				fatal(err)
			}
			res.Diagnostics = append(res.Diagnostics, lint.RunAnalyzers(pkg, cfg, lint.Analyzers())...)
			res.Pragmas = append(res.Pragmas, pkg.Pragmas()...)
		}
		lint.SortDiagnostics(res.Diagnostics)
	} else {
		res, err = m.Lint(nil)
		if err != nil {
			fatal(err)
		}
	}

	if *jsonOut {
		report := struct {
			Module      string            `json:"module"`
			Analyzers   []string          `json:"analyzers"`
			Diagnostics []lint.Diagnostic `json:"diagnostics"`
			Pragmas     []lint.PragmaUse  `json:"pragmas"`
		}{cfg.ModulePath, lint.AnalyzerNames(), relativize(res.Diagnostics, *root), relativizePragmas(res.Pragmas, *root)}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range relativize(res.Diagnostics, *root) {
			fmt.Println(d)
		}
		if len(res.Diagnostics) == 0 {
			fmt.Printf("hivelint: %d analyzers, 0 diagnostics, %d ignore pragmas\n",
				len(lint.Analyzers()), len(res.Pragmas))
		}
	}
	if len(res.Diagnostics) > 0 {
		os.Exit(1)
	}
}

// relativize rewrites absolute file names relative to the module root
// so output is stable across checkouts (and diffable in CI logs).
func relativize(diags []lint.Diagnostic, root string) []lint.Diagnostic {
	out := make([]lint.Diagnostic, len(diags))
	for i, d := range diags {
		if rel, err := filepath.Rel(root, d.File); err == nil {
			d.File = rel
		}
		out[i] = d
	}
	return out
}

func relativizePragmas(pragmas []lint.PragmaUse, root string) []lint.PragmaUse {
	out := make([]lint.PragmaUse, len(pragmas))
	for i, p := range pragmas {
		if rel, err := filepath.Rel(root, p.File); err == nil {
			p.File = rel
		}
		out[i] = p
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hivelint: "+err.Error())
	os.Exit(2)
}
