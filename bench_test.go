package hive

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the ablation benches DESIGN.md calls out. Each bench
// runs the corresponding experiment and reports the measured quantities as
// custom metrics (units chosen to match the paper's tables), so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation. Wall-clock per iteration is dominated
// by the simulated workloads (a few hundred ms each).

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/harness"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/workload"
)

// BenchmarkCarefulClockRead regenerates the §4.1 measurement: the
// careful_on → clock read → careful_off sequence (paper: 1.16 µs, of which
// 0.7 µs is the remote cache miss) vs the RPC alternative (paper: 7.2 µs).
func BenchmarkCarefulClockRead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := harness.RunCareful41()
		b.ReportMetric(c.CarefulReadUs, "careful-us")
		b.ReportMetric(c.NullRPCUs, "rpc-us")
	}
}

// BenchmarkNullRPC regenerates §6's interrupt-level RPC latencies
// (paper: null 7.2 µs, practical 9.6 µs, >1-line 17.3 µs).
func BenchmarkNullRPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.RunRPC6()
		b.ReportMetric(r.NullUs, "null-us")
		b.ReportMetric(r.RealUs, "real-us")
		b.ReportMetric(r.OversizeUs, "oversize-us")
	}
}

// BenchmarkQueuedRPC regenerates §6's queued RPC latency (paper: 34 µs).
func BenchmarkQueuedRPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := harness.RunRPC6()
		b.ReportMetric(r.QueuedUs, "queued-us")
	}
}

// BenchmarkRemotePageFault regenerates Table 5.2: 1024 page faults hitting
// the data home's page cache (paper: 6.9 µs local, 50.7 µs remote).
func BenchmarkRemotePageFault(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := harness.RunTable52()
		b.ReportMetric(t.LocalUs, "local-us")
		b.ReportMetric(t.RemoteUs, "remote-us")
	}
}

// BenchmarkTable73Microbench regenerates Table 7.3: local vs remote kernel
// operations on a two-processor two-cell system with a warm file cache.
func BenchmarkTable73Microbench(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := harness.RunTable73()
		b.ReportMetric(t.Read4MBLocalMs, "read-local-ms")
		b.ReportMetric(t.Read4MBRemoteMs, "read-remote-ms")
		b.ReportMetric(t.Write4MBLocalMs, "write-local-ms")
		b.ReportMetric(t.Write4MBRemoteMs, "write-remote-ms")
		b.ReportMetric(t.OpenLocalUs, "open-local-us")
		b.ReportMetric(t.OpenRemoteUs, "open-remote-us")
	}
}

// BenchmarkTable72Workloads regenerates Table 7.2: ocean, raytrace, and
// pmake on IRIX and on 1/2/4-cell Hive (paper slowdowns: ocean 1/1/-1 %,
// raytrace 0/0/1 %, pmake 1/10/11 %). One iteration runs all twelve
// configurations (~12 virtual-machine-runs).
func BenchmarkTable72Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.RunTable72()
		for _, r := range rows {
			b.ReportMetric(r.IRIXSec, r.Workload+"-irix-s")
			b.ReportMetric(r.Slowdown4, r.Workload+"-4cell-pct")
		}
	}
}

// BenchmarkPmakeFaultTraffic regenerates the §5.2 analysis (paper: 8935
// page-cache faults, 4946 remote on four cells, 117→455 ms cumulative).
func BenchmarkPmakeFaultTraffic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := harness.RunPmakeFaultTraffic()
		b.ReportMetric(float64(t.Faults4Cell), "faults")
		b.ReportMetric(float64(t.Remote4Cell), "remote")
		b.ReportMetric(t.FaultMs4Cell, "fault-ms")
	}
}

// BenchmarkFirewallOverhead regenerates the §4.2 firewall-check cost
// (paper: +6.3 % on the remote write miss under pmake).
func BenchmarkFirewallOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fw := harness.RunFirewall42()
		b.ReportMetric(fw.WriteMissOverheadPct, "overhead-pct")
	}
}

// BenchmarkFirewallWritablePages regenerates the §4.2 policy study
// (paper: pmake averaged 15 remotely-writable pages per cell with a max of
// 42 on the /tmp server; ocean averaged 550).
func BenchmarkFirewallWritablePages(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fw := harness.RunFirewall42()
		b.ReportMetric(fw.PmakeAvgWritable, "pmake-avg")
		b.ReportMetric(fw.PmakeMaxWritable, "pmake-max")
		b.ReportMetric(fw.OceanAvgWritable, "ocean-avg")
	}
}

// BenchmarkTable74FaultInjection regenerates Table 7.4 at reduced scale
// (one trial per scenario per iteration; run cmd/faultdrill for the full
// 49+20 campaign). Containment must hold in every trial.
func BenchmarkTable74FaultInjection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := harness.RunTable74(0.05)
		contained := 1.0
		var avg float64
		for _, r := range rows {
			if !r.AllOK {
				contained = 0
				b.Errorf("containment failure: %v", r.Failures)
			}
			avg += r.AvgDetect
		}
		b.ReportMetric(contained, "contained")
		b.ReportMetric(avg/float64(len(rows)), "avg-detect-ms")
	}
}

// BenchmarkRecoveryLatency regenerates the §7.4 recovery measurement
// (paper: 40-80 ms).
func BenchmarkRecoveryLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tr := RunTrial(NodeFailRandom, i)
		if !tr.OK() {
			b.Fatalf("trial failed: %+v", tr)
		}
		b.ReportMetric(tr.RecoveryMs, "recovery-ms")
		b.ReportMetric(tr.DetectMs, "detect-ms")
	}
}

// BenchmarkCampaignParallel times a fixed slice of the Table 7.4 campaign
// (eight NodeFailRandom trials) on the parallel trial runner, once with a
// single worker and once with a worker per processor. The aggregated rows
// are identical in both configurations (see internal/faultinject's
// determinism tests); only wall-clock changes. On a multi-core host the
// j-max/iter time should approach j1/GOMAXPROCS.
func BenchmarkCampaignParallel(b *testing.B) {
	const trials = 8
	configs := []struct {
		name    string
		workers int
	}{
		{"j1", 1},
		{fmt.Sprintf("j%d", runtime.GOMAXPROCS(0)), runtime.GOMAXPROCS(0)},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			r := parallel.New(cfg.workers)
			for i := 0; i < b.N; i++ {
				row := faultinject.RunScenarioWith(r, faultinject.NodeFailRandom, trials)
				if !row.AllOK {
					b.Fatalf("containment failure: %v", row.Failures)
				}
				b.ReportMetric(row.AvgDetect, "avg-detect-ms")
			}
			b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/sec")
		})
	}
}

// BenchmarkHardwareFeatures exercises every Table 8.1 feature.
func BenchmarkHardwareFeatures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		hw := harness.RunHardware81()
		ok := 0.0
		if hw.Firewall && hw.FaultModel && hw.RemapRegion && hw.SIPS && hw.Cutoff {
			ok = 1.0
		}
		b.ReportMetric(ok, "all-functional")
	}
}

// BenchmarkScalabilityCells is the §1 scalability ablation: kernel-op
// throughput of a shared-everything SMP OS vs the multicellular Hive as
// processors grow; the SMP curve flattens at its kernel lock, the Hive
// curve does not.
func BenchmarkScalabilityCells(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.RunScalability([]int{1, 4, 16})
		last := pts[len(pts)-1]
		b.ReportMetric(float64(last.SMPOps), "smp-ops-16cpu")
		b.ReportMetric(float64(last.HiveOps), "hive-ops-16cpu")
		b.ReportMetric(float64(last.HiveOps)/float64(last.SMPOps), "hive-advantage")
	}
}

// BenchmarkAgreementOracleVsReal compares the paper's oracle against the
// real voting protocol (a §4.3 design-choice ablation).
func BenchmarkAgreementOracleVsReal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ac := harness.RunAgreementComparison()
		if !ac.VoteOK {
			b.Fatal("voting protocol failed to confirm a real failure")
		}
		b.ReportMetric(ac.OracleDetectMs, "oracle-ms")
		b.ReportMetric(ac.VoteDetectMs, "vote-ms")
	}
}

// BenchmarkDetectionInterval sweeps the clock-check period — the §4.3
// tradeoff between monitoring frequency and the window of vulnerability.
func BenchmarkDetectionInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := harness.DetectionCurve(3)
		for _, p := range pts {
			b.ReportMetric(p.DetectMs, fmt.Sprintf("detect-ms-at-%.0fms-checks", p.CheckEveryMs))
		}
	}
}

// BenchmarkPmakeEndToEnd times one full pmake on the 4-cell Hive — the
// headline workload, useful for spotting performance regressions in the
// simulator itself.
func BenchmarkPmakeEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := workload.BootHive(4)
		res := workload.RunPmake(h, workload.DefaultPmake(), 60*sim.Second)
		if !res.Done {
			b.Fatal("pmake did not complete")
		}
		b.ReportMetric(res.Elapsed.Seconds(), "virtual-s")
	}
}

// BenchmarkCOWLookupModes is the §5.3 ablation: the shared-memory COW
// search vs the conventional RPC walk (paper: the RPC approach "would be
// simpler and probably just as fast").
func BenchmarkCOWLookupModes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := harness.RunCOWLookupComparison()
		b.ReportMetric(c.SharedMemUs, "sharedmem-us")
		b.ReportMetric(c.RPCUs, "rpc-us")
		b.ReportMetric(c.TouchSMUs, "touch-sm-us")
		b.ReportMetric(c.TouchRPCUs, "touch-rpc-us")
	}
}

// BenchmarkSIPSvsIPI is the §6 hardware-support ablation: the SIPS round
// trip vs the same exchange over bare IPIs with polled per-sender queues.
func BenchmarkSIPSvsIPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := harness.RunSIPSvsIPI()
		b.ReportMetric(c.SIPSUs, "sips-us")
		b.ReportMetric(c.IPIUs, "ipi-us")
		if c.IPIUs <= c.SIPSUs {
			b.Fatalf("IPI (%f) not slower than SIPS (%f)", c.IPIUs, c.SIPSUs)
		}
	}
}

// BenchmarkCCNOW runs the §8 CC-NOW direction: the same Hive over a 5 µs
// network link; containment must hold and remote operations stretch with
// the interconnect while local ones are unchanged.
func BenchmarkCCNOW(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c := harness.RunCCNOW()
		if !c.Contained {
			b.Fatal("containment lost on CC-NOW")
		}
		b.ReportMetric(c.FaultLocalUs, "fault-local-us")
		b.ReportMetric(c.FaultRemoteUs, "fault-remote-us")
		b.ReportMetric(c.DetectMs, "detect-ms")
	}
}

// BenchmarkFirewallGranularity is the §4.2 representation ablation: how
// many wild writes each firewall design blocks under a fixed sharing
// pattern (bit vector blocks all non-granted writers; a single bit per
// page blocks none once any grant exists).
func BenchmarkFirewallGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bv, sb := harness.RunFirewallGranularity()
		b.ReportMetric(float64(bv), "bitvector-blocked")
		b.ReportMetric(float64(sb), "singlebit-blocked")
		if sb >= bv {
			b.Fatalf("single-bit blocked %d >= bit-vector %d", sb, bv)
		}
	}
}
